module U = Word.U256

let log_src = Logs.Src.create "mufuzz.campaign" ~doc:"MuFuzz campaign events"

module Log = (val Logs.src_log log_src : Logs.LOG)

exception Preempt

type entry = {
  seed : Seed.t;
  path : (int * bool) list;
  nested_hits : (int * bool) list;
  frontier_dists : ((int * bool) * float) list;
  masks : (int, Mask.t) Hashtbl.t;  (* tx index -> cached mask *)
}

let derive_sequence (contract : Minisol.Contract.t) =
  Analysis.Sequence.derive (Analysis.Statevars.analyze contract.ast)

(* Branches whose within-transaction ordinal is >= 2 — the paper's
   "nested branch" (at least two enclosing conditional statements). *)
let nested_hits_of_results (results : Executor.tx_result list) =
  List.concat_map
    (fun (r : Executor.tx_result) ->
      let _, acc =
        List.fold_left
          (fun (ord, acc) ev ->
            match ev with
            | Evm.Trace.Branch { pc; taken; _ } ->
              (ord + 1, if ord + 1 >= 2 then (pc, taken) :: acc else acc)
            | _ -> (ord, acc))
          (0, []) r.trace.events
      in
      acc)
    results
  |> List.sort_uniq compare

let nested_hits_of_run (run : Executor.run) = nested_hits_of_results run.tx_results

let path_of_results (results : Executor.tx_result list) =
  List.concat_map
    (fun (r : Executor.tx_result) -> Evm.Trace.branches r.trace)
    results
  |> List.sort_uniq compare

let path_of_run (run : Executor.run) = path_of_results run.tx_results

let frontier_dists_of_results coverage (results : Executor.tx_result list) =
  let frontier = Coverage.uncovered_frontier coverage in
  List.filter_map
    (fun br ->
      let best =
        List.fold_left
          (fun acc (r : Executor.tx_result) ->
            match Coverage.trace_min_distance r.trace br with
            | Some d -> (match acc with Some a when a <= d -> acc | _ -> Some d)
            | None -> acc)
          None results
      in
      Option.map (fun d -> (br, d)) best)
    frontier

let frontier_dists_of_run coverage (run : Executor.run) =
  frontier_dists_of_results coverage run.tx_results

(* Algorithm-2 probe verdict: did the mutant still hit one of the
   seed's nested branches, or get closer to a frontier side than the
   seed's baseline distance? Shared by the sequential and worker
   probing paths so both fold batch results identically. *)
let mask_feedback ~baseline_nested ~baseline_dists (run : Executor.run) =
  let hits_nested =
    baseline_nested <> []
    && List.exists
         (fun br -> List.mem br baseline_nested)
         (nested_hits_of_run run)
  in
  let distance_decreased =
    List.exists
      (fun (br, base_d) ->
        List.exists
          (fun (r : Executor.tx_result) ->
            match Coverage.trace_min_distance r.trace br with
            | Some d -> d < base_d
            | None -> false)
          run.tx_results)
      baseline_dists
  in
  { Mask.hits_nested; distance_decreased }

(* Triage identity of one alarm occurrence: the call path is the
   function-name prefix of the witnessing sequence up to (and including)
   the raising transaction; whole-contract findings (tx_index = -1,
   e.g. EF) use the empty path. *)
let finding_key (seed : Seed.t) (f : Oracles.Oracle.finding) =
  Oracles.Oracle.key_of ~call_path:(Seed.call_path seed ~upto:f.tx_index) f

let sorted_occurrences occ =
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) occ []
  |> List.sort (fun (a, _) (b, _) -> Oracles.Oracle.compare_key a b)

(* ---------------- checkpoint snapshots ---------------- *)

type snapshot_entry = {
  sn_seed : Seed.t;
  sn_path : (int * bool) list;
  sn_nested : (int * bool) list;
  sn_fdists : ((int * bool) * float) list;
  sn_masks : (int * Mask.t) list;
}

type snapshot = {
  sn_execs : int;
  sn_steps : int;
  sn_mask_probes : int;
  sn_cursor : int;
  sn_rng : int64;
  sn_rng_counter : int;
  sn_elapsed : float;
  sn_entries : snapshot_entry array;
  sn_queue : int list;
  sn_best : ((int * bool) * float * int) list;
  sn_coverage : Coverage.t;
  sn_weights : ((int * bool) * float) list option;
  sn_findings : (Oracles.Oracle.finding * Seed.t) list;
  sn_occ : (Oracles.Oracle.key * int) list;
  sn_over_time : Report.checkpoint list;
  sn_attempts : ((int * bool) * int) list;
  (* v3: round-batch auto-tune controller state + proposal counter *)
  sn_round_batch : int;
  sn_rb_votes : int;
  sn_predict_proposals : int;
}

let snapshot_entry_of_entry (e : entry) =
  {
    sn_seed = e.seed;
    sn_path = e.path;
    sn_nested = e.nested_hits;
    sn_fdists = e.frontier_dists;
    sn_masks =
      Hashtbl.fold (fun i m acc -> (i, m) :: acc) e.masks []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
  }

let entry_of_snapshot_entry (se : snapshot_entry) =
  let masks = Hashtbl.create 4 in
  List.iter (fun (i, m) -> Hashtbl.replace masks i m) se.sn_masks;
  {
    seed = se.sn_seed;
    path = se.sn_path;
    nested_hits = se.sn_nested;
    frontier_dists = se.sn_fdists;
    masks;
  }

(* Capture every mutable structure of a campaign at a safe point. Queue
   and distance pool share [entry] values by physical identity (mask
   caches mutate them in place), so both serialise as indices into one
   deduplicated entry pool. Everything is copied out: the snapshot stays
   valid while the campaign keeps mutating. *)
let capture_snapshot ~execs ~steps ~mask_probes ~cursor ~rng ~rng_counter
    ~elapsed ~queue ~best_for_branch ~coverage ~weight_table ~witness_seeds
    ~occ ~checkpoints ~attempts ~round_batch ~rb_votes ~predict_proposals =
  let seen = ref [] in
  let count = ref 0 in
  let id_of e =
    let rec find = function
      | [] -> None
      | (e', id) :: rest -> if e' == e then Some id else find rest
    in
    match find !seen with
    | Some id -> id
    | None ->
      let id = !count in
      incr count;
      seen := (e, id) :: !seen;
      id
  in
  let sn_queue = List.map id_of (Array.to_list queue) in
  let sn_best =
    List.rev
      (Hashtbl.fold (fun br (d, e) acc -> (br, d, id_of e) :: acc)
         best_for_branch [])
  in
  let sn_entries =
    List.rev_map (fun (e, _) -> snapshot_entry_of_entry e) !seen
    |> Array.of_list
  in
  {
    sn_execs = execs;
    sn_steps = steps;
    sn_mask_probes = mask_probes;
    sn_cursor = cursor;
    sn_rng = Util.Rng.save rng;
    sn_rng_counter = rng_counter;
    sn_elapsed = elapsed;
    sn_entries;
    sn_queue;
    sn_best;
    sn_coverage = Coverage.copy coverage;
    sn_weights =
      Option.map
        (fun tbl ->
          Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl []
          |> List.sort compare)
        weight_table;
    sn_findings = List.rev witness_seeds;
    sn_occ = sorted_occurrences occ;
    sn_over_time = List.rev checkpoints;
    sn_attempts =
      Hashtbl.fold (fun br n acc -> (br, n) :: acc) attempts []
      |> List.sort compare;
    sn_round_batch = round_batch;
    sn_rb_votes = rb_votes;
    sn_predict_proposals = predict_proposals;
  }

(* Rebuild the seed pool of a snapshot. [sn_best] was recorded in
   [Hashtbl.fold] order and is re-inserted in REVERSE fold order into a
   table of the same initial capacity: stdlib buckets keep bindings
   most-recent-first, resizes preserve relative order and the resize
   points depend only on the binding count, so this reproduces the
   original table layout exactly — and with it the fold order the
   distance-feedback selection observes. That, plus the restored RNG
   stream, is what makes a resumed [--jobs 1] campaign replay the
   uninterrupted one bit-for-bit. *)
let restore_pool (s : snapshot) =
  let entries = Array.map entry_of_snapshot_entry s.sn_entries in
  let queue = Array.of_list (List.map (fun i -> entries.(i)) s.sn_queue) in
  let best_for_branch : (int * bool, float * entry) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (br, d, i) -> Hashtbl.replace best_for_branch br (d, entries.(i)))
    (List.rev s.sn_best);
  (queue, best_for_branch)

let m_checkpoint_loaded metrics =
  Telemetry.Metrics.counter metrics "mufuzz_checkpoint_loaded_total"
    ~help:"campaign checkpoints restored"

let emit_resumed ~bus ~metrics resume =
  match resume with
  | None -> ()
  | Some (path, s) ->
    Telemetry.Metrics.incr (m_checkpoint_loaded metrics);
    Telemetry.Bus.emit bus
      (Telemetry.Event.Checkpoint_loaded { execs = s.sn_execs; path });
    Log.info (fun m -> m "resumed from %s at exec %d" path s.sn_execs)

(* Immutable per-contract context, derived once and shared read-only by
   the sequential loop and every worker domain. *)
type ctx = {
  x_config : Config.t;
  x_contract : Minisol.Contract.t;
  x_info : Analysis.Statevars.t;
  x_cfg : Analysis.Cfg.t;
  x_dict : Word.U256.t array;
  x_static : Oracles.Oracle.static_info;
  x_abi : Abi.func list;
}

let make_ctx config (contract : Minisol.Contract.t) =
  {
    x_config = config;
    x_contract = contract;
    x_info = Analysis.Statevars.analyze contract.ast;
    x_cfg = Analysis.Cfg.build contract.bytecode;
    (* contract-specific magic numbers for the mutation dictionary,
       straight off the pre-decoded artifact (same words as
       [Bytecode.push_constants], already collected and memoised).
       Under [predict] the callable account universe joins the
       dictionary too, so address-typed words keep landing on accounts
       the sender-swap solver can later impersonate — without the flag
       the dictionary is exactly the pre-prediction one, preserving
       default campaigns byte-for-byte. *)
    x_dict =
      (let consts = (Evm.Bytecode.artifact contract.bytecode).a_push_constants in
       if config.predict then
         Array.append consts
           (Array.of_list (Accounts.caller_pool config.n_senders))
       else consts);
    x_static = Oracles.Oracle.static_info_of contract;
    x_abi = contract.abi;
  }

(* ---------------- telemetry plumbing ---------------- *)

(* A campaign's event bus is assembled from the config's declarative
   sinks (JSONL trace, live status line) plus whatever the caller
   passes programmatically (ring buffers in tests). With neither, this
   is [Bus.null] and every emission below is a single array-length
   test — the no-op overhead guarantee. *)
let make_bus (config : Config.t) ~total_sides sinks =
  let config_sinks =
    (match config.trace_path with
    | Some path -> [ Telemetry.Sink.jsonl path ]
    | None -> [])
    @
    if config.status_interval > 0.0 then
      [ Telemetry.Sink.status ~interval:config.status_interval ~total_sides () ]
    else []
  in
  match config_sinks @ sinks with
  | [] -> Telemetry.Bus.null
  | l -> Telemetry.Bus.create l

let total_sides_of_cfg cfg = 2 * List.length (Analysis.Cfg.branch_points cfg)

(* Branch sides a run is about to cover for the first time — computed
   BEFORE folding the run into [coverage], and only when someone is
   listening. *)
let pending_new_sides bus coverage results =
  if not (Telemetry.Bus.enabled bus) then []
  else
    List.filter
      (fun br -> not (Coverage.is_covered coverage br))
      (path_of_results results)

let emit_new_sides bus coverage sides =
  List.iter
    (fun (pc, taken) ->
      Telemetry.Bus.emit bus
        (Telemetry.Event.New_branch_side
           { pc; taken; covered = Coverage.covered_count coverage }))
    sides

let emit_finding bus (f : Oracles.Oracle.finding) =
  Telemetry.Bus.emit bus
    (Telemetry.Event.Finding_raised
       {
         cls = Oracles.Oracle.class_to_string f.cls;
         pc = f.pc;
         tx_index = f.tx_index;
       })

(* the registry handles every campaign records through *)
type meters = {
  m_execs : Telemetry.Metrics.counter;
  m_findings : Telemetry.Metrics.counter;
  m_enqueued : Telemetry.Metrics.counter;
  m_probes : Telemetry.Metrics.counter;
  m_probes_coord : Telemetry.Metrics.counter;
  m_predict_proposed : Telemetry.Metrics.counter;
  m_predict_flipped : Telemetry.Metrics.counter;
  m_covered : Telemetry.Metrics.gauge;
}

let make_meters metrics =
  let c name help = Telemetry.Metrics.counter metrics name ~help in
  {
    m_execs = c "mufuzz_executions_total" "transaction-sequence executions";
    m_findings = c "mufuzz_findings_total" "distinct (bug class, pc) findings";
    m_enqueued = c "mufuzz_seeds_enqueued_total" "seeds added to the selection queue";
    m_probes = c "mufuzz_mask_probes_total" "Algorithm-2 mask probe executions";
    m_probes_coord =
      c "mufuzz_mask_probes_coordinator_total"
        "mask probes executed on the coordinator domain (zero whenever \
         jobs > 1: probing runs inside worker tasks)";
    m_predict_proposed =
      c "mufuzz_predict_proposed_total" "input-prediction proposals executed";
    m_predict_flipped =
      c "mufuzz_predict_flipped_total"
        "frontier branch sides covered by a prediction proposal";
    m_covered =
      Telemetry.Metrics.gauge metrics "mufuzz_covered_sides"
        ~help:"branch sides covered so far";
  }

(* ---------------- initial seeds ---------------- *)

let base_sequence ctx rng =
  match ctx.x_config.Config.sequence_mode with
  | Config.Seq_random -> Analysis.Sequence.random_sequence rng ctx.x_info
  | Config.Seq_dataflow -> Analysis.Sequence.derive_base ctx.x_info
  | Config.Seq_dataflow_repeat -> Analysis.Sequence.derive ctx.x_info

let new_seed ctx rng =
  let config = ctx.x_config in
  let seed =
    Seed.of_sequence ~dict:ctx.x_dict rng ~n_senders:config.n_senders ctx.x_abi
      ("constructor" :: base_sequence ctx rng)
  in
  if not config.prolongation then seed
  else begin
    (* IR-Fuzz-style prolongation: stretch the tail with extra calls *)
    let fns = Minisol.Contract.callable_functions ctx.x_contract in
    if fns = [] then seed
    else
      let extra =
        List.init (1 + Util.Rng.int rng 3) (fun _ ->
            Seed.random_tx ~dict:ctx.x_dict rng ~n_senders:config.n_senders
              (Util.Rng.choose_list rng fns))
      in
      { Seed.txs = seed.txs @ extra }
  end

(* ---------------- sequence-level mutation (§IV-A, continuing) ------- *)

let mutate_sequence ctx rng (seed : Seed.t) =
  let config = ctx.x_config in
  let info = ctx.x_info in
  match seed.txs with
  | [] | [ _ ] -> seed
  | ctor :: rest -> begin
    let rest = Array.of_list rest in
    let n = Array.length rest in
    (match
       (* RAW-targeted duplication and sequence extension are the §IV-A
          moves of the full system. Baselines mutate the ORDER of their
          sequences (the paper's §III-B point is precisely that they
          cannot make a transaction run twice); IR-Fuzz's extension
          happens at seed creation via prolongation instead. *)
       if config.sequence_mode = Config.Seq_dataflow_repeat then Util.Rng.int rng 3
       else 1
     with
    | 0 ->
      (* duplicate a transaction whose function the RAW rule marks as
         repeatable (fall back to any) *)
      let candidates =
        Array.to_list rest
        |> List.filter (fun (tx : Seed.tx) ->
               match Analysis.Statevars.info info tx.fn.Abi.name with
               | Some fi -> Analysis.Statevars.should_repeat info fi
               | None -> false)
      in
      let tx =
        match candidates with
        | [] -> rest.(Util.Rng.int rng n)
        | l -> Util.Rng.choose_list rng l
      in
      let pos = Util.Rng.int rng (n + 1) in
      let l = Array.to_list rest in
      let before = List.filteri (fun i _ -> i < pos) l in
      let after = List.filteri (fun i _ -> i >= pos) l in
      { Seed.txs = ctor :: (before @ [ tx ] @ after) }
    | 1 when n >= 2 ->
      let i = Util.Rng.int rng n and j = Util.Rng.int rng n in
      let tmp = rest.(i) in
      rest.(i) <- rest.(j);
      rest.(j) <- tmp;
      { Seed.txs = ctor :: Array.to_list rest }
    | _ ->
      (* append a random callable *)
      let fns = Minisol.Contract.callable_functions ctx.x_contract in
      if fns = [] then seed
      else
        let fn = Util.Rng.choose_list rng fns in
        { Seed.txs = ctor :: (Array.to_list rest
                              @ [ Seed.random_tx ~dict:ctx.x_dict rng
                                    ~n_senders:config.n_senders fn ]) })
  end

(* ---------------- input prediction (hybrid fuzzing) ---------------- *)

(* Count a run's visits to still-uncovered branch flip sides. The table
   drives the prediction trigger: once a frontier side has been reached
   [predict_attempts] times without flipping, the solver fires for it. *)
let note_flip_attempts ~coverage attempts (results : Executor.tx_result list) =
  List.iter
    (fun (r : Executor.tx_result) ->
      List.iter
        (function
          | Evm.Trace.Branch { pc; taken; _ } ->
            let other = (pc, not taken) in
            if not (Coverage.is_covered coverage other) then
              Hashtbl.replace attempts other
                (1 + Option.value ~default:0 (Hashtbl.find_opt attempts other))
          | _ -> ())
        r.trace.Evm.Trace.events)
    results

(* The comparison site guarding frontier side [(pc, want)] in a replay
   that reached its other side: the solver's target, tagged with the
   transaction whose input feeds it. *)
let comparison_for_branch (results : Executor.tx_result list) (pc, want) =
  List.find_map
    (fun (r : Executor.tx_result) ->
      List.find_map
        (function
          | Evm.Trace.Branch { pc = p; taken; cmp = Some c; _ }
            when p = pc && taken = not want ->
            Some (r.tx_index, c)
          | _ -> None)
        r.trace.Evm.Trace.events)
    results

(* Proposal seeds for flipping frontier side [want] of the comparison
   [cmp] reached by [e.seed]'s transaction [tx_index]: mask-respecting
   stream patches of each solved value (calldata / msg.value operands),
   plus a sender swap when the operand is the caller address — the
   solved value then IS the address the guard wants, so the proposal is
   the pool account holding it rather than a byte patch. Deduplicated,
   capped at [predict_max_candidates]. *)
let predict_proposals ctx (e : entry) ~tx_index ~(cmp : Evm.Trace.comparison)
    ~want =
  let config = ctx.x_config in
  let module T = Evm.Trace.Taint in
  match List.nth_opt e.seed.Seed.txs tx_index with
  | None -> []
  | Some tx ->
    (* the mask-interaction invariant: solved bytes land only where the
       cached Algorithm-2 mask admits an overwrite (no mask yet means
       nothing is known to be protected) *)
    let allow pos =
      match Hashtbl.find_opt e.masks tx_index with
      | Some msk -> Mask.allows msk Mutation.O ~pos
      | None -> true
    in
    let args_len = Abi.args_byte_length tx.Seed.fn in
    let cands = Predict.Solver.candidates cmp ~want in
    let of_stream stream =
      Seed.with_tx e.seed tx_index { tx with Seed.stream }
    in
    let stream_patches =
      List.concat_map
        (fun (side, v) ->
          let taint = Predict.Solver.side_taint cmp side in
          if T.has taint T.calldata || T.has taint T.callvalue then
            Predict.Inject.patches ~allow ~taint
              ~current:(Predict.Solver.side_value cmp side)
              ~args_len ~stream:tx.Seed.stream v
            |> List.map of_stream
          else [])
        cands
    in
    let sender_swaps =
      List.filter_map
        (fun (side, v) ->
          if not (T.has (Predict.Solver.side_taint cmp side) T.caller) then None
          else
            let rec find i = function
              | [] -> None
              | a :: rest -> if U.equal a v then Some i else find (i + 1) rest
            in
            match find 0 (Accounts.caller_pool config.Config.n_senders) with
            | Some idx when idx <> tx.Seed.sender ->
              Some (Seed.with_tx e.seed tx_index { tx with Seed.sender = idx })
            | _ -> None)
        cands
    in
    let seen = ref [] in
    List.filter
      (fun s ->
        if List.mem s !seen then false
        else begin
          seen := s :: !seen;
          true
        end)
      (stream_patches @ sender_swaps)
    |> List.filteri (fun i _ -> i < config.Config.predict_max_candidates)

(* Frontier sides whose attempt count crossed the firing threshold and
   for which the distance pool still holds a witness entry, nearest
   (lowest pc) first. *)
let predict_ready (config : Config.t) ~coverage ~best_for_branch attempts =
  Hashtbl.fold
    (fun br n acc ->
      if
        n >= config.predict_attempts
        && (not (Coverage.is_covered coverage br))
        && Hashtbl.mem best_for_branch br
      then br :: acc
      else acc)
    attempts []
  |> List.sort compare

let run ?(config = Config.default) ?(sinks = []) ?metrics ?resume ?on_safe_point
    (contract : Minisol.Contract.t) =
  (* shift the clock back by the time already spent before the
     checkpoint, so wall_seconds and the max_seconds budget span the
     whole logical campaign, not just this process *)
  let prior_elapsed =
    match resume with Some (_, s) -> s.sn_elapsed | None -> 0.0
  in
  let start_time = Unix.gettimeofday () -. prior_elapsed in
  let rng =
    match resume with
    | Some (_, s) -> Util.Rng.restore s.sn_rng
    | None -> Util.Rng.create config.rng_seed
  in
  let ctx = make_ctx config contract in
  let cfg = ctx.x_cfg in
  let dict = ctx.x_dict in
  let static = ctx.x_static in
  let metrics =
    match metrics with Some m -> m | None -> Telemetry.Metrics.create ()
  in
  let bus = make_bus config ~total_sides:(total_sides_of_cfg cfg) sinks in
  let meters = make_meters metrics in
  let coverage =
    match resume with
    | Some (_, s) -> Coverage.copy s.sn_coverage
    | None -> Coverage.create ()
  in
  let findings_tbl : (Oracles.Oracle.bug_class * int, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let occ : (Oracles.Oracle.key, int) Hashtbl.t = Hashtbl.create 32 in
  let findings = ref [] in
  let witnesses = ref [] in
  let witness_seeds = ref [] in
  (match resume with
  | Some (_, s) ->
    List.iter (fun (k, n) -> Hashtbl.replace occ k n) s.sn_occ;
    List.iter
      (fun ((f : Oracles.Oracle.finding), seed) ->
        Hashtbl.replace findings_tbl (f.cls, f.pc) ();
        findings := f :: !findings;
        witnesses := (f, Seed.show seed) :: !witnesses;
        witness_seeds := (f, seed) :: !witness_seeds)
      s.sn_findings
  | None -> ());
  let attempts : (int * bool, int) Hashtbl.t = Hashtbl.create 64 in
  (match resume with
  | Some (_, s) ->
    List.iter (fun (br, n) -> Hashtbl.replace attempts br n) s.sn_attempts
  | None -> ());
  let execs = ref (match resume with Some (_, s) -> s.sn_execs | None -> 0) in
  let steps = ref (match resume with Some (_, s) -> s.sn_steps | None -> 0) in
  let checkpoints =
    ref (match resume with Some (_, s) -> List.rev s.sn_over_time | None -> [])
  in
  let weight_table : (int * bool, float) Hashtbl.t option ref =
    ref
      (if not config.dynamic_energy then None
       else
         let tbl = Hashtbl.create 64 in
         (match resume with
         | Some (_, { sn_weights = Some ws; _ }) ->
           List.iter (fun (k, w) -> Hashtbl.replace tbl k w) ws
         | _ -> ());
         Some tbl)
  in
  let deadline =
    if config.max_seconds > 0.0 then Some (start_time +. config.max_seconds)
    else None
  in
  let time_exhausted () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
  in
  let budget_left () =
    !execs < config.max_executions && not (time_exhausted ())
  in
  let cache =
    if config.state_caching then Some (State_cache.create ~metrics ()) else None
  in
  (* one executor context for the whole campaign: telemetry handles
     resolve once, per-execution counts accumulate locally and flush at
     safe points / campaign end instead of per execution *)
  let xctx =
    Executor.make_ctx ~contract ~gas:config.gas_per_tx
      ~n_senders:config.n_senders ~attacker:config.attacker_enabled ?cache
      ~metrics ()
  in
  emit_resumed ~bus ~metrics resume;
  (* Execute a seed, fold its feedback into every table, return the run
     plus whether it covered a new branch side. *)
  let exec_and_observe seed =
    let run = Executor.run_in_ctx xctx seed in
    incr execs;
    (* logical steps (cached prefixes included): a pure function of the
       executed seeds, so the report total survives checkpoint/resume
       with a cold state cache; the physical total still feeds the
       mufuzz_evm_steps_total metric inside the executor *)
    steps := !steps + run.Executor.logical_steps;
    Telemetry.Metrics.incr meters.m_execs;
    let new_sides = pending_new_sides bus coverage run.tx_results in
    let fresh =
      List.fold_left
        (fun fresh (r : Executor.tx_result) -> Coverage.record coverage r.trace || fresh)
        false run.tx_results
    in
    Telemetry.Bus.emit bus
      (Telemetry.Event.Exec_completed { worker = 0; fresh });
    emit_new_sides bus coverage new_sides;
    if config.predict then
      note_flip_attempts ~coverage attempts run.tx_results;
    if fresh then begin
      Telemetry.Metrics.set meters.m_covered
        (float_of_int (Coverage.covered_count coverage));
      Log.debug (fun m ->
          m "exec %d: coverage %d sides" !execs (Coverage.covered_count coverage))
    end;
    let executions =
      List.map (fun (r : Executor.tx_result) -> (r.tx_index, r.success, r.trace))
        run.tx_results
    in
    List.iter
      (fun (f : Oracles.Oracle.finding) ->
        let tkey = finding_key seed f in
        Hashtbl.replace occ tkey
          (1 + Option.value ~default:0 (Hashtbl.find_opt occ tkey));
        let key = (f.cls, f.pc) in
        if not (Hashtbl.mem findings_tbl key) then begin
          Hashtbl.replace findings_tbl key ();
          findings := f :: !findings;
          witnesses := (f, Seed.show seed) :: !witnesses;
          witness_seeds := (f, seed) :: !witness_seeds;
          Telemetry.Metrics.incr meters.m_findings;
          emit_finding bus f;
          Log.info (fun m ->
              m "exec %d: new finding %a" !execs Oracles.Oracle.pp_finding f)
        end)
      (Oracles.Oracle.inspect_campaign ~static ~received_value:run.received_value
         executions);
    (* pre-fuzz / continuous branch weighting (Algorithm 3) *)
    (match !weight_table with
    | Some tbl when fresh ->
      List.iter
        (fun (r : Executor.tx_result) ->
          List.iter
            (fun (wb : Analysis.Prefix.weighted_branch) ->
              let key = (wb.pc, wb.taken) in
              match Hashtbl.find_opt tbl key with
              | Some w when w >= wb.weight -> ()
              | _ -> Hashtbl.replace tbl key wb.weight)
            (Analysis.Prefix.analyze_trace ~params:config.prefix_params cfg r.trace))
        run.tx_results
    | _ -> ());
    checkpoints :=
      { Report.execs = !execs; covered = Coverage.covered_count coverage }
      :: !checkpoints;
    (run, fresh)
  in
  let mk_entry seed run =
    {
      seed;
      path = path_of_run run;
      nested_hits = nested_hits_of_run run;
      frontier_dists = frontier_dists_of_run coverage run;
      masks = Hashtbl.create 4;
    }
  in
  (* ---------------- initial seeds ---------------- *)
  let new_seed () = new_seed ctx rng in
  let restored_queue, restored_best =
    match resume with
    | Some (_, s) -> restore_pool s
    | None -> ([||], Hashtbl.create 64)
  in
  let queue : entry array ref = ref restored_queue in
  let queue_add e =
    let cap = 128 in
    let q = Array.to_list !queue @ [ e ] in
    let q = if List.length q > cap then List.tl q else q in
    queue := Array.of_list q;
    Telemetry.Metrics.incr meters.m_enqueued;
    Telemetry.Bus.emit bus
      (Telemetry.Event.Seed_enqueued
         { txs = List.length e.seed.txs; queue_len = Array.length !queue })
  in
  let best_for_branch : (int * bool, float * entry) Hashtbl.t = restored_best in
  let note_entry e =
    List.iter
      (fun (br, d) ->
        match Hashtbl.find_opt best_for_branch br with
        | Some (best, _) when best <= d -> ()
        | _ -> Hashtbl.replace best_for_branch br (d, e))
      e.frontier_dists
  in
  (* a resumed campaign already carries its seeded queue; re-running the
     bootstrap would double-spend the budget and desync the RNG *)
  if resume = None then begin
    (* replayed corpus first, then freshly generated seeds *)
    List.iter
      (fun seed ->
        if budget_left () then begin
          let run, _fresh = exec_and_observe seed in
          let e = mk_entry seed run in
          queue_add e;
          note_entry e
        end)
      config.initial_corpus;
    for _ = 1 to config.initial_seeds do
      if budget_left () then begin
        let seed = new_seed () in
        let run, _fresh = exec_and_observe seed in
        let e = mk_entry seed run in
        queue_add e;
        note_entry e
      end
    done
  end;
  (* ---------------- mask probing ---------------- *)
  let mask_probes_used =
    ref (match resume with Some (_, s) -> s.sn_mask_probes | None -> 0)
  in
  let predict_proposed =
    ref (match resume with Some (_, s) -> s.sn_predict_proposals | None -> 0)
  in
  let mask_budget_left () =
    float_of_int !mask_probes_used
    < config.mask_budget_fraction *. float_of_int config.max_executions
  in
  let get_mask (e : entry) tx_index =
    match Hashtbl.find_opt e.masks tx_index with
    | Some m -> Some m
    | None when not (mask_budget_left ()) -> None
    | None ->
      let tx = List.nth e.seed.txs tx_index in
      let baseline_nested = e.nested_hits in
      let baseline_dists = e.frontier_dists in
      if baseline_nested = [] && baseline_dists = [] then None
      else begin
        (* staged Algorithm 2: the plan draws from [rng] exactly as the
           interleaved [Mask.compute] would, then each probe executes in
           plan order — the parallel runner batches this same schedule
           through the worker pool *)
        let pl =
          Mask.plan rng ~stride:config.mask_stride
            ~max_probes:config.mask_max_probes tx.stream
        in
        let probes_before = !mask_probes_used in
        let feedbacks =
          Array.map
            (fun (p : Mask.probe) ->
              if not (budget_left ()) then None
              else begin
                let probe_seed =
                  Seed.with_tx e.seed tx_index
                    { tx with stream = p.probe_stream }
                in
                incr mask_probes_used;
                let run, _ = exec_and_observe probe_seed in
                Some (mask_feedback ~baseline_nested ~baseline_dists run)
              end)
            (Mask.probes pl)
        in
        let m = Mask.finish pl feedbacks in
        let spent = !mask_probes_used - probes_before in
        Telemetry.Metrics.add meters.m_probes spent;
        Telemetry.Metrics.add meters.m_probes_coord spent;
        Telemetry.Bus.emit bus
          (Telemetry.Event.Mask_updated { tx_index; probes = spent });
        if Hashtbl.length e.masks < config.mask_cache_max then
          Hashtbl.replace e.masks tx_index m;
        Some m
      end
  in
  let mutate_sequence seed = mutate_sequence ctx rng seed in
  let cursor = ref (match resume with Some (_, s) -> s.sn_cursor | None -> 0) in
  (* Safe points: moments where every feedback structure is consistent
     and no work is in flight, so the whole campaign can be captured.
     The snapshot is built lazily — only when the hook decides the
     cadence is due does any copying happen. *)
  let safe_point ~final =
    (* metrics sinks observing at the safe point see exact totals *)
    Executor.flush xctx;
    match on_safe_point with
    | None -> ()
    | Some hook ->
      hook ~final ~bus ~execs:!execs (fun () ->
          capture_snapshot ~execs:!execs ~steps:!steps
            ~mask_probes:!mask_probes_used ~cursor:!cursor ~rng ~rng_counter:0
            ~elapsed:(Unix.gettimeofday () -. start_time)
            ~queue:!queue ~best_for_branch ~coverage
            ~weight_table:!weight_table ~witness_seeds:!witness_seeds ~occ
            ~checkpoints:!checkpoints ~attempts
            ~round_batch:(Stdlib.max 1 config.round_batch) ~rb_votes:0
            ~predict_proposals:!predict_proposed)
  in
  (* ---------------- prediction phase ---------------- *)
  (* Fires once per outer-loop pass over every ready frontier side:
     replay the pool's closest seed to recover the guarding comparison
     (one execution — comparisons are not stored in entries or
     snapshots), then spend up to [predict_max_candidates] executions on
     solved proposals. A firing that fails to flip leaves the attempt
     counter negative by the accumulated count, so each retry waits
     longer than the last — the backoff lives in the attempts table and
     therefore survives checkpoints. Entirely inert when [predict] is
     off: no RNG draws, no executions, no control-flow change. *)
  let predict_phase () =
    if config.predict then
      List.iter
        (fun br ->
          if budget_left () && not (Coverage.is_covered coverage br) then begin
            let fired_at =
              Option.value ~default:0 (Hashtbl.find_opt attempts br)
            in
            Hashtbl.replace attempts br 0;
            let _, e = Hashtbl.find best_for_branch br in
            let replay, _ = exec_and_observe e.seed in
            (match comparison_for_branch replay.Executor.tx_results br with
            | None -> ()
            | Some (tx_index, cmp) ->
              List.iter
                (fun cand ->
                  if budget_left () && not (Coverage.is_covered coverage br)
                  then begin
                    Telemetry.Metrics.incr meters.m_predict_proposed;
                    incr predict_proposed;
                    let run, fresh = exec_and_observe cand in
                    if fresh then begin
                      let e' = mk_entry cand run in
                      queue_add e';
                      note_entry e'
                    end;
                    if Coverage.is_covered coverage br then begin
                      Telemetry.Metrics.incr meters.m_predict_flipped;
                      Log.info (fun m ->
                          m "predict: flipped (%d,%B) at exec %d" (fst br)
                            (snd br) !execs)
                    end
                  end)
                (predict_proposals ctx e ~tx_index ~cmp ~want:(snd br)));
            if not (Coverage.is_covered coverage br) then
              Hashtbl.replace attempts br (-fired_at)
          end)
        (predict_ready config ~coverage ~best_for_branch attempts)
  in
  (* A hook may raise [Preempt] from a non-final safe point to yield the
     campaign: the loop exits immediately with [Report.Preempted], the
     snapshot the hook captured being the resume point. Safe points are
     the only raise sites, so the exception always leaves every feedback
     structure consistent. *)
  let preempted = ref false in
  (* ---------------- main loop ---------------- *)
  (try
  (* black-box mode: no feedback, fresh random seeds until the budget ends *)
  if config.blackbox then
    while budget_left () do
      safe_point ~final:false;
      ignore (exec_and_observe (new_seed ()))
    done;
  while budget_left () && Array.length !queue > 0 do
    safe_point ~final:false;
    predict_phase ();
    (* Branch-distance-feedback selection (Algorithm 1 lines 8-13): most
       picks go to the seed closest to some still-uncovered branch. *)
    let entry =
      let frontier =
        Hashtbl.fold
          (fun br (d, e) acc ->
            if Coverage.is_covered coverage br then acc else (br, d, e) :: acc)
          best_for_branch []
      in
      if config.distance_feedback && frontier <> [] && Util.Rng.float rng < 0.7 then
        let _, _, e = Util.Rng.choose_list rng frontier in
        e
      else begin
        let q = !queue in
        let e = q.(!cursor mod Array.length q) in
        incr cursor;
        e
      end
    in
    let energy =
      Energy.assign ~dynamic:config.dynamic_energy ~base:config.base_energy
        ~max_energy:config.max_energy
        ~weights:!weight_table ~path:entry.path
    in
    Telemetry.Bus.emit bus (Telemetry.Event.Energy_reassigned { energy });
    let remaining = ref energy in
    while !remaining > 0 && budget_left () do
      let ntx = List.length entry.seed.txs in
      let tx_index = Util.Rng.int rng ntx in
      let tx = List.nth entry.seed.txs tx_index in
      let stream = tx.Seed.stream in
      let mask =
        if config.mask_guided && (entry.nested_hits <> [] || entry.frontier_dists <> [])
        then get_mask entry tx_index
        else None
      in
      let pos = Util.Rng.int rng (Stdlib.max 1 (String.length stream)) in
      let m = Mutation.random rng ~max_n:8 in
      let allowed =
        match mask with
        | Some msk -> Mask.allows msk m.Mutation.kind ~pos
        | None -> true
      in
      if not allowed then remaining := !remaining - 1
      else begin
        let mutated = Mutation.apply ~dict rng m ~pos stream in
        let candidate = Seed.with_tx entry.seed tx_index { tx with stream = mutated } in
        let candidate =
          if Util.Rng.float rng < config.sequence_mutation_prob then
            mutate_sequence candidate
          else candidate
        in
        if budget_left () then begin
          let run, fresh = exec_and_observe candidate in
          if fresh then begin
            let e = mk_entry candidate run in
            queue_add e;
            note_entry e
          end
          else begin
            (* Algorithm 1 lines 8-13: a seed that gets closer to an
               uncovered branch joins the selection pool even without new
               coverage — this is what lets mutation hill-climb strict
               conditions. *)
            let dists = frontier_dists_of_run coverage run in
            let improves =
              List.exists
                (fun (br, d) ->
                  match Hashtbl.find_opt best_for_branch br with
                  | Some (best, _) -> d < best
                  | None -> true)
                dists
            in
            if improves then
              note_entry
                { seed = candidate; path = path_of_run run;
                  nested_hits = nested_hits_of_run run;
                  frontier_dists = dists; masks = Hashtbl.create 4 }
          end;
          remaining := Energy.update !remaining ~new_coverage:fresh
        end
        else remaining := 0
      end
    done
  done
  with Preempt -> preempted := true);
  if !preempted then
    (* the preempting hook already captured its snapshot; the final
       flush keeps metrics sinks exact without re-running the hook *)
    Executor.flush xctx
  else safe_point ~final:true;
  let stop_reason =
    if !preempted then Report.Preempted
    else if !execs >= config.max_executions then Report.Budget_exhausted
    else if time_exhausted () then Report.Time_exhausted
    else Report.Queue_exhausted
  in
  let report =
    {
      Report.contract_name = contract.name;
      executions = !execs;
      steps = !steps;
      mask_probes = !mask_probes_used;
      predict_proposals = !predict_proposed;
      covered_branches = Coverage.covered_count coverage;
      covered = List.sort compare (Coverage.covered coverage);
      total_branch_sides = 2 * List.length (Analysis.Cfg.branch_points cfg);
      findings = Oracles.Oracle.dedup (List.rev !findings);
      occurrences = sorted_occurrences occ;
      witnesses = List.rev !witnesses;
      witness_seeds = List.rev !witness_seeds;
      over_time = List.rev !checkpoints;
      seeds_in_queue = Array.length !queue;
      corpus = Array.to_list !queue |> List.map (fun e -> e.seed);
      corpus_skipped = [];
      wall_seconds = Unix.gettimeofday () -. start_time;
      stop_reason;
      parallel = None;
    }
  in
  Telemetry.Bus.finalize bus;
  report

(* ==================== parallel campaign (domain pool) ====================

   Round-based coordinator/worker split. The coordinator owns every
   feedback structure of Algorithm 1 (seed queue, global coverage,
   branch-distance pool, energy weight table, findings); workers own
   nothing but a coverage snapshot, a private RNG stream and a
   per-domain executor state cache. Each round the coordinator picks up
   to [jobs] distinct seeds with the sequential selection policy,
   reserves disjoint slices of the execution budget as quotas, and ships
   one seed-energy batch per worker. Workers run the exact inner
   mutation loop of [run] against their local coverage copy and return
   candidates; the coordinator merges results in task order, so
   Algorithms 2-3 semantics are unchanged — only freshness is judged
   against a snapshot that can be one batch stale, which costs at most a
   few duplicate queue entries, never a lost one. *)

type cand_kind = Cand_fresh | Cand_improving

type cand = {
  c_seed : Seed.t;
  c_tx_results : Executor.tx_result list;
  c_kind : cand_kind;
}

type task_result = {
  t_worker : int;
  t_execs : int;
  t_steps : int;
  t_probes : int;
  t_cands : cand list;  (* execution order *)
  t_findings : (Oracles.Oracle.finding * Seed.t) list;  (* execution order *)
  t_weights : ((int * bool) * float) list;
  t_cov : Coverage.t;
  t_attempts : ((int * bool) * int) list;
      (* flip-attempt counts against the round-start snapshot; [] when
         prediction is off *)
}

(* One worker-round group: a slice of the round's chosen seed-energy
   pairs, run on a single worker domain. Mirrors the inner energy loop
   of [run] exactly for each entry in turn, with the global budget
   replaced by the reserved [quota], the global mask-probe budget by
   [mask_allowance], and freshness judged against the private [cov]
   snapshot. Shipping [round_batch] entries per task amortises one
   round's dispatch, snapshot and merge cost over several seeds; all
   execution goes through the worker's persistent context, so telemetry
   reaches the shared registry once per task (the coordinator accounts
   the campaign-level exec/probe counters at merge). *)
(* probes per [Executor.run_batch] dispatch inside a worker's mask
   refresh: four stride anchors x four operator kinds *)
let probe_wave_width = 16

let fuzz_group_task ctx ~bus ~xctxs ~group ~quota ~mask_allowance
    ~best_snapshot ~cov rng worker =
  let config = ctx.x_config in
  let execs = ref 0 and steps = ref 0 and probes = ref 0 in
  let cands = ref [] and findings = ref [] and weights = ref [] in
  let attempts : (int * bool, int) Hashtbl.t = Hashtbl.create 16 in
  let quota_left () = !execs < quota in
  let xctx = xctxs.(worker) in
  (* feedback fold for one already-executed run: batch dispatch below
     reuses it so wave results land exactly as per-probe execution did *)
  let observe_run seed (run : Executor.run) =
    incr execs;
    steps := !steps + run.Executor.logical_steps;
    let fresh =
      List.fold_left
        (fun fresh (r : Executor.tx_result) -> Coverage.record cov r.trace || fresh)
        false run.tx_results
    in
    (* freshness here is judged against the round-start snapshot; the
       coordinator re-judges candidates globally at merge time *)
    Telemetry.Bus.emit bus (Telemetry.Event.Exec_completed { worker; fresh });
    if config.predict then note_flip_attempts ~coverage:cov attempts run.tx_results;
    let executions =
      List.map (fun (r : Executor.tx_result) -> (r.tx_index, r.success, r.trace))
        run.tx_results
    in
    List.iter
      (fun (f : Oracles.Oracle.finding) -> findings := (f, seed) :: !findings)
      (Oracles.Oracle.inspect_campaign ~static:ctx.x_static
         ~received_value:run.received_value executions);
    if config.dynamic_energy && fresh then
      List.iter
        (fun (r : Executor.tx_result) ->
          List.iter
            (fun (wb : Analysis.Prefix.weighted_branch) ->
              weights := ((wb.pc, wb.taken), wb.weight) :: !weights)
            (Analysis.Prefix.analyze_trace ~params:config.prefix_params ctx.x_cfg
               r.trace))
        run.tx_results;
    (run, fresh)
  in
  let exec_and_observe seed = observe_run seed (Executor.run_in_ctx xctx seed) in
  let get_mask (entry : entry) tx_index =
    match Hashtbl.find_opt entry.masks tx_index with
    | Some m -> Some m
    | None when !probes >= mask_allowance -> None
    | None ->
      let tx = List.nth entry.seed.txs tx_index in
      let baseline_nested = entry.nested_hits in
      let baseline_dists = entry.frontier_dists in
      if baseline_nested = [] && baseline_dists = [] then None
      else begin
        (* staged Algorithm 2: plan the probe schedule, execute it in
           stride-grouped waves through the batch executor, fold the
           feedback back. Probes are the only executions inside a mask
           refresh, so the affordable prefix computed up front admits
           exactly the probes the sequential per-probe budget checks
           would have *)
        let pl =
          Mask.plan rng ~stride:config.mask_stride
            ~max_probes:config.mask_max_probes tx.stream
        in
        let all = Mask.probes pl in
        let afford =
          Stdlib.min (Array.length all)
            (Stdlib.min
               (Stdlib.max 0 (quota - !execs))
               (Stdlib.max 0 (mask_allowance - !probes)))
        in
        let feedbacks = Array.make (Array.length all) None in
        let executed = ref 0 in
        List.iter
          (fun (wave : Mask.probe array) ->
            if !executed < afford then begin
              let wlen = Stdlib.min (Array.length wave) (afford - !executed) in
              let base = !executed in
              let seeds =
                List.init wlen (fun k ->
                    Seed.with_tx entry.seed tx_index
                      { tx with stream = wave.(k).Mask.probe_stream })
              in
              probes := !probes + wlen;
              let runs = Executor.run_batch xctx seeds in
              List.iteri
                (fun k run ->
                  ignore (observe_run (List.nth seeds k) run);
                  feedbacks.(base + k) <-
                    Some (mask_feedback ~baseline_nested ~baseline_dists run))
                runs;
              executed := !executed + wlen
            end)
          (Mask.waves pl ~width:probe_wave_width);
        let m = Mask.finish pl feedbacks in
        Telemetry.Bus.emit bus
          (Telemetry.Event.Mask_updated { tx_index; probes = !executed });
        if Hashtbl.length entry.masks < config.mask_cache_max then
          Hashtbl.replace entry.masks tx_index m;
        Some m
      end
  in
  let fuzz_entry (entry, energy) =
  let remaining = ref energy in
  while !remaining > 0 && quota_left () do
    let ntx = List.length entry.seed.txs in
    let tx_index = Util.Rng.int rng ntx in
    let tx = List.nth entry.seed.txs tx_index in
    let stream = tx.Seed.stream in
    let mask =
      if config.mask_guided && (entry.nested_hits <> [] || entry.frontier_dists <> [])
      then get_mask entry tx_index
      else None
    in
    let pos = Util.Rng.int rng (Stdlib.max 1 (String.length stream)) in
    let m = Mutation.random rng ~max_n:8 in
    let allowed =
      match mask with
      | Some msk -> Mask.allows msk m.Mutation.kind ~pos
      | None -> true
    in
    if not allowed then remaining := !remaining - 1
    else begin
      let mutated = Mutation.apply ~dict:ctx.x_dict rng m ~pos stream in
      let candidate = Seed.with_tx entry.seed tx_index { tx with stream = mutated } in
      let candidate =
        if Util.Rng.float rng < config.sequence_mutation_prob then
          mutate_sequence ctx rng candidate
        else candidate
      in
      if quota_left () then begin
        let run, fresh = exec_and_observe candidate in
        if fresh then
          cands :=
            { c_seed = candidate; c_tx_results = run.tx_results;
              c_kind = Cand_fresh }
            :: !cands
        else begin
          (* pre-filter against the round-start snapshot: global best
             distances only shrink, so nothing dropped here could have
             entered the pool — the coordinator re-checks survivors *)
          let dists = frontier_dists_of_run cov run in
          let improves =
            List.exists
              (fun (br, d) ->
                match Hashtbl.find_opt best_snapshot br with
                | Some best -> d < best
                | None -> true)
              dists
          in
          if improves then
            cands :=
              { c_seed = candidate; c_tx_results = run.tx_results;
                c_kind = Cand_improving }
              :: !cands
        end;
        remaining := Energy.update !remaining ~new_coverage:fresh
      end
      else remaining := 0
    end
  done
  in
  List.iter fuzz_entry group;
  Executor.flush xctx;
  {
    t_worker = worker;
    t_execs = !execs;
    t_steps = !steps;
    t_probes = !probes;
    t_cands = List.rev !cands;
    t_findings = List.rev !findings;
    t_weights = List.rev !weights;
    t_cov = cov;
    t_attempts =
      Hashtbl.fold (fun br n acc -> (br, n) :: acc) attempts []
      |> List.sort compare;
  }

let run_parallel_on ?(bus = Telemetry.Bus.null) ?metrics ?resume ?on_safe_point
    pool config (contract : Minisol.Contract.t) =
  let prior_elapsed =
    match resume with Some (_, s) -> s.sn_elapsed | None -> 0.0
  in
  let start_time = Unix.gettimeofday () -. prior_elapsed in
  let jobs = Pool.size pool in
  let ctx = make_ctx config contract in
  let rng =
    match resume with
    | Some (_, s) -> Util.Rng.restore s.sn_rng
    | None -> Util.Rng.create config.rng_seed
  in
  let metrics =
    match metrics with Some m -> m | None -> Telemetry.Metrics.create ()
  in
  let meters = make_meters metrics in
  let coverage =
    match resume with
    | Some (_, s) -> Coverage.copy s.sn_coverage
    | None -> Coverage.create ()
  in
  let findings_tbl : (Oracles.Oracle.bug_class * int, unit) Hashtbl.t =
    Hashtbl.create 16
  in
  let occ : (Oracles.Oracle.key, int) Hashtbl.t = Hashtbl.create 32 in
  let findings = ref [] in
  let witnesses = ref [] in
  let witness_seeds = ref [] in
  (match resume with
  | Some (_, s) ->
    List.iter (fun (k, n) -> Hashtbl.replace occ k n) s.sn_occ;
    List.iter
      (fun ((f : Oracles.Oracle.finding), seed) ->
        Hashtbl.replace findings_tbl (f.cls, f.pc) ();
        findings := f :: !findings;
        witnesses := (f, Seed.show seed) :: !witnesses;
        witness_seeds := (f, seed) :: !witness_seeds)
      s.sn_findings
  | None -> ());
  let attempts : (int * bool, int) Hashtbl.t = Hashtbl.create 64 in
  (match resume with
  | Some (_, s) ->
    List.iter (fun (br, n) -> Hashtbl.replace attempts br n) s.sn_attempts
  | None -> ());
  let execs = ref (match resume with Some (_, s) -> s.sn_execs | None -> 0) in
  let steps = ref (match resume with Some (_, s) -> s.sn_steps | None -> 0) in
  let checkpoints =
    ref (match resume with Some (_, s) -> List.rev s.sn_over_time | None -> [])
  in
  let weight_table : (int * bool, float) Hashtbl.t option ref =
    ref
      (if not config.dynamic_energy then None
       else
         let tbl = Hashtbl.create 64 in
         (match resume with
         | Some (_, { sn_weights = Some ws; _ }) ->
           List.iter (fun (k, w) -> Hashtbl.replace tbl k w) ws
         | _ -> ());
         Some tbl)
  in
  let mask_probes_used =
    ref (match resume with Some (_, s) -> s.sn_mask_probes | None -> 0)
  in
  let predict_proposed =
    ref (match resume with Some (_, s) -> s.sn_predict_proposals | None -> 0)
  in
  let deadline =
    if config.max_seconds > 0.0 then Some (start_time +. config.max_seconds)
    else None
  in
  let time_exhausted () =
    match deadline with None -> false | Some d -> Unix.gettimeofday () >= d
  in
  let budget_left () =
    !execs < config.max_executions && not (time_exhausted ())
  in
  (* every worker stream is a pure function of (campaign seed, dispatch
     counter): runs are reproducible for a fixed (rng_seed, jobs) — the
     counter rides along in checkpoints so resumed campaigns continue
     with fresh streams instead of replaying spent ones *)
  let rng_counter =
    ref (match resume with Some (_, s) -> s.sn_rng_counter | None -> 0)
  in
  let next_worker_rng () =
    let k = !rng_counter in
    incr rng_counter;
    Util.Rng.derive config.rng_seed k
  in
  (* one cache shard and one executor context per worker domain, built
     once for the whole campaign: the hot execution path touches only
     domain-local state, and per-execution telemetry reaches the shared
     registry in one flush per task (the pool barrier is the hand-off
     edge that makes coordinator-built contexts safe to hand to
     workers) *)
  let shard_cache =
    if config.state_caching then
      Some (State_cache.create_sharded ~metrics ~shards:jobs ())
    else None
  in
  let xctxs =
    Array.init jobs (fun w ->
        Executor.make_ctx ~contract:ctx.x_contract ~gas:config.gas_per_tx
          ~n_senders:config.n_senders ~attacker:config.attacker_enabled
          ?cache:(Option.map (fun s -> State_cache.shard s w) shard_cache)
          ~metrics ())
  in
  let stats0 = Pool.stats pool in
  let execs_by_worker = Array.make jobs 0 in
  let rounds = ref 0 in
  let merge_seconds = ref 0.0 in
  (* --round-batch auto: a bounded hysteretic controller over the round
     batch width. Between merge barriers it reads the pool's per-round
     stall deltas — worker seconds parked mid-batch plus coordinator
     seconds blocked at the barrier, over total round seconds — and
     widens the batch (x2, capped) after [rb_hysteresis] consecutive
     stalled rounds, narrows it (/2, floored at 1) after as many cheap
     ones. Width and vote counter ride in the snapshot (v3) so a
     resumed campaign continues the trajectory instead of resetting. *)
  let rb_max = 32 in
  let rb_high = 0.25 and rb_low = 0.10 in
  let rb_hysteresis = 2 in
  let rb_width =
    ref
      (match resume with
      | Some (_, s) when config.round_batch_auto && s.sn_round_batch > 0 ->
        Stdlib.min rb_max s.sn_round_batch
      | _ -> Stdlib.max 1 config.round_batch)
  in
  let rb_votes =
    ref
      (match resume with
      | Some (_, s) when config.round_batch_auto -> s.sn_rb_votes
      | _ -> 0)
  in
  let auto_tune_round ~(s0 : Pool.stats) ~(s1 : Pool.stats) =
    let sumd a b =
      Array.fold_left ( +. ) 0.0 a -. Array.fold_left ( +. ) 0.0 b
    in
    let idle = sumd s1.stall_seconds s0.stall_seconds in
    let busy = sumd s1.busy_seconds s0.busy_seconds in
    let mwait = s1.merge_wait_seconds -. s0.merge_wait_seconds in
    let denom = busy +. idle +. mwait in
    let ratio = if denom > 0.0 then (idle +. mwait) /. denom else 0.0 in
    let vote =
      if ratio > rb_high then 1 else if ratio < rb_low then -1 else 0
    in
    if vote = 0 then rb_votes := 0
    else if !rb_votes * vote < 0 then rb_votes := vote
    else rb_votes := !rb_votes + vote;
    if !rb_votes >= rb_hysteresis then begin
      rb_votes := 0;
      if !rb_width < rb_max then begin
        rb_width := Stdlib.min rb_max (!rb_width * 2);
        Log.debug (fun m ->
            m "round-batch auto: stall ratio %.2f, widen to %d" ratio !rb_width)
      end
    end
    else if !rb_votes <= -rb_hysteresis then begin
      rb_votes := 0;
      if !rb_width > 1 then begin
        rb_width := Stdlib.max 1 (!rb_width / 2);
        Log.debug (fun m ->
            m "round-batch auto: stall ratio %.2f, narrow to %d" ratio
              !rb_width)
      end
    end
  in
  let restored_queue, restored_best =
    match resume with
    | Some (_, s) -> restore_pool s
    | None -> ([||], Hashtbl.create 64)
  in
  let queue : entry array ref = ref restored_queue in
  let queue_add e =
    let cap = 128 in
    let q = Array.to_list !queue @ [ e ] in
    let q = if List.length q > cap then List.tl q else q in
    queue := Array.of_list q;
    Telemetry.Metrics.incr meters.m_enqueued;
    Telemetry.Bus.emit bus
      (Telemetry.Event.Seed_enqueued
         { txs = List.length e.seed.txs; queue_len = Array.length !queue })
  in
  let best_for_branch : (int * bool, float * entry) Hashtbl.t = restored_best in
  let note_entry e =
    List.iter
      (fun (br, d) ->
        match Hashtbl.find_opt best_for_branch br with
        | Some (best, _) when best <= d -> ()
        | _ -> Hashtbl.replace best_for_branch br (d, e))
      e.frontier_dists
  in
  let mk_entry seed tx_results =
    {
      seed;
      path = path_of_results tx_results;
      nested_hits = nested_hits_of_results tx_results;
      frontier_dists = frontier_dists_of_results coverage tx_results;
      masks = Hashtbl.create 4;
    }
  in
  let checkpoint () =
    checkpoints :=
      { Report.execs = !execs; covered = Coverage.covered_count coverage }
      :: !checkpoints
  in
  let note_findings seed fs =
    List.iter
      (fun (f : Oracles.Oracle.finding) ->
        let tkey = finding_key seed f in
        Hashtbl.replace occ tkey
          (1 + Option.value ~default:0 (Hashtbl.find_opt occ tkey));
        let key = (f.cls, f.pc) in
        if not (Hashtbl.mem findings_tbl key) then begin
          Hashtbl.replace findings_tbl key ();
          findings := f :: !findings;
          witnesses := (f, Seed.show seed) :: !witnesses;
          witness_seeds := (f, seed) :: !witness_seeds;
          Telemetry.Metrics.incr meters.m_findings;
          emit_finding bus f;
          Log.info (fun m ->
              m "exec %d: new finding %a" !execs Oracles.Oracle.pp_finding f)
        end)
      fs
  in
  let merge_weights ws =
    match !weight_table with
    | Some tbl ->
      List.iter
        (fun (key, w) ->
          match Hashtbl.find_opt tbl key with
          | Some w' when w' >= w -> ()
          | _ -> Hashtbl.replace tbl key w)
        ws
    | None -> ()
  in
  (* fold one executed-but-unmutated run in on the coordinator (initial
     seeds, black-box seeds): global coverage, findings, Algorithm-3
     weights — the coordinator-side twin of [run]'s exec_and_observe *)
  let observe_on_coordinator ~worker seed (results : Executor.tx_result list)
      received_value =
    incr execs;
    Telemetry.Metrics.incr meters.m_execs;
    let new_sides = pending_new_sides bus coverage results in
    let fresh =
      List.fold_left
        (fun fresh (r : Executor.tx_result) -> Coverage.record coverage r.trace || fresh)
        false results
    in
    Telemetry.Bus.emit bus (Telemetry.Event.Exec_completed { worker; fresh });
    emit_new_sides bus coverage new_sides;
    if config.predict then note_flip_attempts ~coverage attempts results;
    if fresh then
      Telemetry.Metrics.set meters.m_covered
        (float_of_int (Coverage.covered_count coverage));
    let executions =
      List.map (fun (r : Executor.tx_result) -> (r.tx_index, r.success, r.trace))
        results
    in
    note_findings seed
      (Oracles.Oracle.inspect_campaign ~static:ctx.x_static ~received_value
         executions);
    (match !weight_table with
    | Some _ when fresh ->
      merge_weights
        (List.concat_map
           (fun (r : Executor.tx_result) ->
             List.map
               (fun (wb : Analysis.Prefix.weighted_branch) ->
                 ((wb.pc, wb.taken), wb.weight))
               (Analysis.Prefix.analyze_trace ~params:config.prefix_params ctx.x_cfg
                  r.trace))
           results)
    | _ -> ());
    checkpoint ();
    fresh
  in
  (* run a coordinator-generated seed list across the pool, returning
     [(index, worker, seed, run)] sorted back into submission order —
     the shared dispatch under initial seeds, black-box batches and the
     batched predict phase; callers fold the runs in order so feedback
     lands exactly as a sequential pass would *)
  let run_seeds_across_pool seeds =
    let indexed = List.mapi (fun i s -> (i, s)) seeds in
    let ntasks = Stdlib.min jobs (List.length indexed) in
    if ntasks = 0 then []
    else begin
      let tasks =
        Array.init ntasks (fun j ->
            let mine = List.filter (fun (i, _) -> i mod ntasks = j) indexed in
            fun worker ->
              (* one dispatch pass through the worker's context: pooled
                 frames, resolved metric handles and the cache shard are
                 reused across the slice, telemetry flushed once *)
              let xctx = xctxs.(worker) in
              let out =
                List.map
                  (fun (i, seed) -> (i, worker, seed, Executor.run_in_ctx xctx seed))
                  mine
              in
              Executor.flush xctx;
              out)
      in
      Pool.run_batch pool tasks |> Array.to_list |> List.concat
      |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)
    end
  in
  let execute_seeds_parallel ~enqueue seeds =
    List.iter
      (fun (_, worker, seed, (run : Executor.run)) ->
        execs_by_worker.(worker) <- execs_by_worker.(worker) + 1;
        ignore (observe_on_coordinator ~worker seed run.tx_results run.received_value);
        if enqueue then begin
          let e = mk_entry seed run.tx_results in
          queue_add e;
          note_entry e
        end)
      (run_seeds_across_pool seeds)
  in
  let cursor = ref (match resume with Some (_, s) -> s.sn_cursor | None -> 0) in
  (* capture between rounds, when the workers are parked at the barrier
     and the coordinator owns every feedback structure *)
  let safe_point ~final =
    match on_safe_point with
    | None -> ()
    | Some hook ->
      hook ~final ~bus ~execs:!execs (fun () ->
          capture_snapshot ~execs:!execs ~steps:!steps
            ~mask_probes:!mask_probes_used ~cursor:!cursor ~rng
            ~rng_counter:!rng_counter
            ~elapsed:(Unix.gettimeofday () -. start_time)
            ~queue:!queue ~best_for_branch ~coverage
            ~weight_table:!weight_table ~witness_seeds:!witness_seeds ~occ
            ~checkpoints:!checkpoints ~attempts ~round_batch:!rb_width
            ~rb_votes:!rb_votes ~predict_proposals:!predict_proposed)
  in
  (* ---------------- prediction phase ---------------- *)
  (* Fired between rounds while the workers are parked at the barrier,
     in three batched stages instead of one coordinator-serial loop:
     (1) one replay per firing frontier side to recover the guarding
     comparison, all replays crossing the pool as a single batch;
     (2) the solved proposals for every side the replays left uncovered,
     again as one batch, capped at the remaining execution budget;
     (3) linear backoff for sides that still did not flip. Results fold
     through [observe_on_coordinator] in submission order, so feedback
     lands deterministically regardless of which worker ran what. The
     only divergence from the serial loop is bounded overspend: a
     proposal batched before a sibling proposal flips its branch still
     executes (the serial loop would have skipped it) — the budget cap
     itself stays exact. Inert when [predict] is off. *)
  let predict_phase () =
    if config.predict then begin
      let ready = predict_ready config ~coverage ~best_for_branch attempts in
      let firing =
        List.filter_map
          (fun br ->
            if budget_left () && not (Coverage.is_covered coverage br) then begin
              let fired_at =
                Option.value ~default:0 (Hashtbl.find_opt attempts br)
              in
              Hashtbl.replace attempts br 0;
              let _, e = Hashtbl.find best_for_branch br in
              Some (br, fired_at, e)
            end
            else None)
          ready
      in
      (* cap each stage at the remaining budget: the batch may not push
         [execs] past [max_executions] *)
      let rem = Stdlib.max 0 (config.max_executions - !execs) in
      let firing = List.filteri (fun i _ -> i < rem) firing in
      if firing <> [] then begin
        let replays =
          run_seeds_across_pool
            (List.map (fun (_, _, (e : entry)) -> e.seed) firing)
        in
        List.iter2
          (fun (_, _, (e : entry)) (_, worker, _, (run : Executor.run)) ->
            execs_by_worker.(worker) <- execs_by_worker.(worker) + 1;
            ignore
              (observe_on_coordinator ~worker e.seed run.tx_results
                 run.received_value))
          firing replays;
        let proposals =
          List.concat
            (List.map2
               (fun (br, _, e) (_, _, _, (run : Executor.run)) ->
                 if Coverage.is_covered coverage br then []
                 else
                   match comparison_for_branch run.tx_results br with
                   | None -> []
                   | Some (tx_index, cmp) ->
                     List.map
                       (fun cand -> (br, cand))
                       (predict_proposals ctx e ~tx_index ~cmp ~want:(snd br)))
               firing replays)
        in
        let rem = Stdlib.max 0 (config.max_executions - !execs) in
        let proposals = List.filteri (fun i _ -> i < rem) proposals in
        if proposals <> [] then begin
          let results = run_seeds_across_pool (List.map snd proposals) in
          List.iter2
            (fun (br, cand) (_, worker, _, (run : Executor.run)) ->
              execs_by_worker.(worker) <- execs_by_worker.(worker) + 1;
              Telemetry.Metrics.incr meters.m_predict_proposed;
              incr predict_proposed;
              let covered_before = Coverage.is_covered coverage br in
              let fresh =
                observe_on_coordinator ~worker cand run.tx_results
                  run.received_value
              in
              if fresh then begin
                let e' = mk_entry cand run.tx_results in
                queue_add e';
                note_entry e'
              end;
              if (not covered_before) && Coverage.is_covered coverage br
              then begin
                Telemetry.Metrics.incr meters.m_predict_flipped;
                Log.info (fun m ->
                    m "predict: flipped (%d,%B) at exec %d" (fst br) (snd br)
                      !execs)
              end)
            proposals results
        end;
        List.iter
          (fun (br, fired_at, _) ->
            if not (Coverage.is_covered coverage br) then
              Hashtbl.replace attempts br (-fired_at))
          firing
      end
    end
  in
  emit_resumed ~bus ~metrics resume;
  (* ---------------- initial seeds ---------------- *)
  if resume = None then begin
    let initial_seeds =
      let fresh = ref [] in
      for _ = 1 to config.initial_seeds do
        fresh := new_seed ctx rng :: !fresh
      done;
      let all = config.initial_corpus @ List.rev !fresh in
      List.filteri (fun i _ -> i < config.max_executions) all
    in
    execute_seeds_parallel ~enqueue:true initial_seeds
  end;
  (* Workers are parked at the barrier whenever a safe point runs, so a
     [Preempt] raised by the hook leaves no task in flight — the same
     consistency argument as the sequential loop. *)
  let preempted = ref false in
  let zero_rounds = ref 0 in
  (try
  (* ---------------- black-box mode ---------------- *)
  if config.blackbox then
    while budget_left () do
      safe_point ~final:false;
      let rem = config.max_executions - !execs in
      let n = Stdlib.min rem (jobs * 32) in
      let batch = ref [] in
      for _ = 1 to n do
        batch := new_seed ctx rng :: !batch
      done;
      execute_seeds_parallel ~enqueue:false (List.rev !batch)
    done;
  (* ---------------- main loop ---------------- *)
  while budget_left () && Array.length !queue > 0 && !zero_rounds < 64 do
    incr rounds;
    let rem = config.max_executions - !execs in
    (* coarse rounds: [round_batch] seeds per worker per merge barrier,
       so a 3000-exec campaign crosses a handful of barriers instead of
       dozens — per-round coordination (snapshot copies, RNG derivation,
       parking/waking the pool) is the dominant parallel overhead *)
    let want = Stdlib.min (jobs * !rb_width) rem in
    (* up to [want] distinct seeds, picked with the sequential policy *)
    let chosen = ref [] in
    let tries = ref 0 in
    while List.length !chosen < want && !tries < 4 * want do
      incr tries;
      let entry =
        let frontier =
          Hashtbl.fold
            (fun br (d, e) acc ->
              if Coverage.is_covered coverage br then acc else (br, d, e) :: acc)
            best_for_branch []
        in
        if config.distance_feedback && frontier <> [] && Util.Rng.float rng < 0.7 then
          let _, _, e = Util.Rng.choose_list rng frontier in
          e
        else begin
          let q = !queue in
          let e = q.(!cursor mod Array.length q) in
          incr cursor;
          e
        end
      in
      if not (List.memq entry !chosen) then chosen := entry :: !chosen
    done;
    let chosen = List.rev !chosen in
    let k = List.length chosen in
    let ntasks = Stdlib.min (Stdlib.min jobs k) rem in
    let base_quota = rem / ntasks and extra = rem mod ntasks in
    let mask_cap =
      int_of_float
        (config.mask_budget_fraction *. float_of_int config.max_executions)
    in
    let mask_share = Stdlib.max 0 (mask_cap - !mask_probes_used) / ntasks in
    let best_snapshot : (int * bool, float) Hashtbl.t =
      Hashtbl.create (Stdlib.max 16 (Hashtbl.length best_for_branch))
    in
    Hashtbl.iter (fun br (d, _) -> Hashtbl.replace best_snapshot br d)
      best_for_branch;
    (* energies assigned in choice order against the round-start weight
       table, then the chosen seeds are dealt round-robin into one group
       per task *)
    let pairs =
      List.map
        (fun entry ->
          let energy =
            Energy.assign ~dynamic:config.dynamic_energy ~base:config.base_energy
              ~max_energy:config.max_energy ~weights:!weight_table ~path:entry.path
          in
          Telemetry.Bus.emit bus (Telemetry.Event.Energy_reassigned { energy });
          (entry, energy))
        chosen
    in
    let groups = Array.make ntasks [] in
    List.iteri
      (fun i p -> groups.(i mod ntasks) <- p :: groups.(i mod ntasks))
      pairs;
    let tasks =
      Array.init ntasks (fun i ->
          let group = List.rev groups.(i) in
          let quota = base_quota + (if i < extra then 1 else 0) in
          let wrng = next_worker_rng () in
          let cov = Coverage.copy coverage in
          fun worker ->
            fuzz_group_task ctx ~bus ~xctxs ~group ~quota
              ~mask_allowance:mask_share ~best_snapshot ~cov wrng worker)
    in
    (* workers never emit New_branch_side (their snapshots race); the
       coordinator diffs the merged covered set per round instead *)
    let covered_before =
      if Telemetry.Bus.enabled bus then Coverage.covered coverage else []
    in
    let round_execs = ref 0 in
    let rstats0 =
      if config.round_batch_auto then Some (Pool.stats pool) else None
    in
    (* incremental merge: task i folds in (in submission order, so the
       merge sequence is deterministic) while tasks i+1.. are still
       running on the workers — no stop-the-world barrier *)
    Pool.run_batch_iter pool tasks ~merge:(fun _i tr ->
        let t0 = Unix.gettimeofday () in
        round_execs := !round_execs + tr.t_execs;
        Telemetry.Metrics.add meters.m_execs tr.t_execs;
        Telemetry.Metrics.add meters.m_probes tr.t_probes;
        execs := !execs + tr.t_execs;
        steps := !steps + tr.t_steps;
        execs_by_worker.(tr.t_worker) <-
          execs_by_worker.(tr.t_worker) + tr.t_execs;
        mask_probes_used := !mask_probes_used + tr.t_probes;
        List.iter
          (fun c ->
            let fresh =
              List.fold_left
                (fun fresh (r : Executor.tx_result) ->
                  Coverage.record coverage r.trace || fresh)
                false c.c_tx_results
            in
            match c.c_kind with
            | Cand_fresh when fresh ->
              let e = mk_entry c.c_seed c.c_tx_results in
              queue_add e;
              note_entry e
            | Cand_fresh | Cand_improving ->
              (* lost the freshness race (another domain covered the same
                 side this round) or improving-only: Algorithm 1 lines
                 8-13 still let it join the selection pool if it got
                 closer to an uncovered branch than anything known *)
              let dists = frontier_dists_of_results coverage c.c_tx_results in
              let improves =
                List.exists
                  (fun (br, d) ->
                    match Hashtbl.find_opt best_for_branch br with
                    | Some (best, _) -> d < best
                    | None -> true)
                  dists
              in
              if improves then
                note_entry
                  {
                    seed = c.c_seed;
                    path = path_of_results c.c_tx_results;
                    nested_hits = nested_hits_of_results c.c_tx_results;
                    frontier_dists = dists;
                    masks = Hashtbl.create 4;
                  })
          tr.t_cands;
        List.iter (fun (f, seed) -> note_findings seed [ f ]) tr.t_findings;
        merge_weights tr.t_weights;
        Coverage.merge ~into:coverage tr.t_cov;
        (* sum worker attempt counts, dropping sides the merged coverage
           has since flipped — they no longer need prediction *)
        List.iter
          (fun (br, n) ->
            if not (Coverage.is_covered coverage br) then
              Hashtbl.replace attempts br
                (n + Option.value ~default:0 (Hashtbl.find_opt attempts br)))
          tr.t_attempts;
        checkpoint ();
        merge_seconds := !merge_seconds +. (Unix.gettimeofday () -. t0));
    (match rstats0 with
    | Some s0 -> auto_tune_round ~s0 ~s1:(Pool.stats pool)
    | None -> ());
    if !round_execs = 0 then incr zero_rounds else zero_rounds := 0;
    Telemetry.Metrics.set meters.m_covered
      (float_of_int (Coverage.covered_count coverage));
    if Telemetry.Bus.enabled bus then begin
      let base = List.length covered_before in
      let fresh_sides =
        List.filter
          (fun br -> not (List.mem br covered_before))
          (Coverage.covered coverage)
      in
      List.iteri
        (fun i (pc, taken) ->
          Telemetry.Bus.emit bus
            (Telemetry.Event.New_branch_side
               { pc; taken; covered = base + i + 1 }))
        (List.sort compare fresh_sides)
    end;
    Telemetry.Bus.emit bus
      (Telemetry.Event.Batch_merge
         {
           round = !rounds;
           execs = !round_execs;
           covered = Coverage.covered_count coverage;
         });
    Log.debug (fun m ->
        m "round %d: %d seeds in %d tasks, %d execs, coverage %d sides" !rounds
          k ntasks !round_execs
          (Coverage.covered_count coverage));
    (* after the merge (so attempt counts are current) and before the
       next round's quota split, which needs a non-empty remainder *)
    if budget_left () then predict_phase ();
    safe_point ~final:false
  done
  with Preempt -> preempted := true);
  if not !preempted then safe_point ~final:true;
  let stop_reason =
    if !preempted then Report.Preempted
    else if !execs >= config.max_executions then Report.Budget_exhausted
    else if time_exhausted () then Report.Time_exhausted
    else if !zero_rounds >= 64 then Report.Stalled
    else Report.Queue_exhausted
  in
  let stats1 = Pool.stats pool in
  let domains =
    List.init jobs (fun i ->
        {
          Report.domain = i;
          d_execs = execs_by_worker.(i);
          busy_seconds = stats1.busy_seconds.(i) -. stats0.busy_seconds.(i);
          stall_seconds = stats1.stall_seconds.(i) -. stats0.stall_seconds.(i);
        })
  in
  {
    Report.contract_name = contract.name;
    executions = !execs;
    steps = !steps;
    mask_probes = !mask_probes_used;
    predict_proposals = !predict_proposed;
    covered_branches = Coverage.covered_count coverage;
    covered = List.sort compare (Coverage.covered coverage);
    total_branch_sides = 2 * List.length (Analysis.Cfg.branch_points ctx.x_cfg);
    findings = Oracles.Oracle.dedup (List.rev !findings);
    occurrences = sorted_occurrences occ;
    witnesses = List.rev !witnesses;
    witness_seeds = List.rev !witness_seeds;
    over_time = List.rev !checkpoints;
    seeds_in_queue = Array.length !queue;
    corpus = Array.to_list !queue |> List.map (fun e -> e.seed);
    corpus_skipped = [];
    wall_seconds = Unix.gettimeofday () -. start_time;
    stop_reason;
    parallel =
      Some
        {
          Report.jobs;
          rounds = !rounds;
          round_batch = Stdlib.max 1 config.round_batch;
          round_batch_auto = config.round_batch_auto;
          round_batch_final = !rb_width;
          merge_seconds = !merge_seconds;
          merge_wait_seconds =
            stats1.merge_wait_seconds -. stats0.merge_wait_seconds;
          worker_idle_seconds =
            Array.fold_left ( +. ) 0.0 stats1.stall_seconds
            -. Array.fold_left ( +. ) 0.0 stats0.stall_seconds;
          steals = stats1.steals - stats0.steals;
          domains;
        };
  }

let run_parallel ?(config = Config.default) ?pool ?(sinks = []) ?metrics
    ?resume ?on_safe_point (contract : Minisol.Contract.t) =
  let jobs =
    match pool with Some p -> Pool.size p | None -> Stdlib.max 1 config.jobs
  in
  if jobs <= 1 then run ~config ~sinks ?metrics ?resume ?on_safe_point contract
  else begin
    let metrics =
      match metrics with Some m -> m | None -> Telemetry.Metrics.create ()
    in
    let total_sides =
      total_sides_of_cfg (Analysis.Cfg.build contract.Minisol.Contract.bytecode)
    in
    let bus = make_bus config ~total_sides sinks in
    let report =
      match pool with
      | Some p -> run_parallel_on ~bus ~metrics ?resume ?on_safe_point p config contract
      | None ->
        (* a pool created here (rather than passed in) also reports its
           steal events through the campaign's bus *)
        Pool.with_pool ~bus ~metrics ~jobs (fun p ->
            run_parallel_on ~bus ~metrics ?resume ?on_safe_point p config
              contract)
    in
    Telemetry.Bus.finalize bus;
    report
  end

type failure = { failed_contract : string; failed_reason : string }

let run_result ?config ?sinks ?metrics ?resume ?on_safe_point contract =
  match run ?config ?sinks ?metrics ?resume ?on_safe_point contract with
  | report -> Ok report
  | exception Preempt ->
    (* a cooperative yield is control flow, not a broken contract *)
    raise Preempt
  | exception e ->
    let failed_reason =
      match e with
      | Pool.Task_error inner ->
        Printf.sprintf "worker task failed: %s" (Printexc.to_string inner)
      | e -> Printexc.to_string e
    in
    Error
      { failed_contract = contract.Minisol.Contract.name; failed_reason }

let run_many ?(config = Config.default) ?pool contracts =
  match pool with
  | Some p when Pool.size p > 1 ->
    Pool.map p (fun c -> run_result ~config c) contracts
  | _ -> List.map (fun c -> run_result ~config c) contracts
