type snapshot = {
  state : Evm.State.t;
  block : Evm.Interp.block_env;
  tx_results : Executor_types.tx_result list;
  received_value : bool;
}

(* Bounded LRU approximated by a second-chance clock: entries live in a
   ring of [capacity] slots; a hit sets the entry's referenced bit, and
   the clock hand skips (and clears) referenced entries before evicting.
   The previous implementation reset the whole table when full, which
   threw away exactly the hot prefixes the executor was about to ask
   for; the clock evicts only cold entries, one at a time. *)

type entry = {
  e_key : string;
  mutable e_snap : snapshot;
  mutable referenced : bool;
}

type t = {
  table : (string, entry) Hashtbl.t;
  slots : entry option array;
  mutable hand : int;
  mutable occupied : int;
  capacity : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
  (* counts already pushed into the registry; the hot find/store path
     only touches the plain local counts above — registry atomics are
     cross-domain cache-line traffic, paid once per [flush_metrics] *)
  mutable flushed_hits : int;
  mutable flushed_misses : int;
  mutable flushed_evictions : int;
  c_hits : Telemetry.Metrics.counter option;
  c_misses : Telemetry.Metrics.counter option;
  c_evictions : Telemetry.Metrics.counter option;
}

let create ?(capacity = 4096) ?metrics () =
  let capacity = Stdlib.max 1 capacity in
  let counter name help =
    Option.map
      (fun m -> Telemetry.Metrics.counter m name ~help)
      metrics
  in
  {
    table = Hashtbl.create 256;
    slots = Array.make capacity None;
    hand = 0;
    occupied = 0;
    capacity;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    flushed_hits = 0;
    flushed_misses = 0;
    flushed_evictions = 0;
    c_hits = counter "mufuzz_cache_hits_total" "prefix-state cache hits";
    c_misses = counter "mufuzz_cache_misses_total" "prefix-state cache misses";
    c_evictions =
      counter "mufuzz_cache_evictions_total"
        "prefix-state cache entries evicted by the clock hand";
  }

let flush_metrics t =
  let push c current flushed =
    match c with
    | Some c when current > flushed -> Telemetry.Metrics.add c (current - flushed)
    | _ -> ()
  in
  push t.c_hits t.hit_count t.flushed_hits;
  push t.c_misses t.miss_count t.flushed_misses;
  push t.c_evictions t.eviction_count t.flushed_evictions;
  t.flushed_hits <- t.hit_count;
  t.flushed_misses <- t.miss_count;
  t.flushed_evictions <- t.eviction_count

let digest_tx prev (tx : Seed.tx) =
  Crypto.Keccak.hash
    (prev ^ Abi.selector tx.fn ^ String.make 1 (Char.chr (tx.sender land 0xff))
   ^ tx.stream)

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.referenced <- true;
    t.hit_count <- t.hit_count + 1;
    Some e.e_snap
  | None ->
    t.miss_count <- t.miss_count + 1;
    None

(* Advance the hand to a victim slot: clear referenced bits as it
   passes, stopping at the first unreferenced entry. Terminates within
   two sweeps (after one sweep every bit is clear). *)
let evict_one t =
  let rec spin () =
    match t.slots.(t.hand) with
    | Some e when e.referenced ->
      e.referenced <- false;
      t.hand <- (t.hand + 1) mod t.capacity;
      spin ()
    | Some e ->
      Hashtbl.remove t.table e.e_key;
      t.eviction_count <- t.eviction_count + 1;
      let slot = t.hand in
      t.hand <- (t.hand + 1) mod t.capacity;
      slot
    | None ->
      (* only reachable when not yet full; callers avoid this *)
      let slot = t.hand in
      t.hand <- (t.hand + 1) mod t.capacity;
      slot
  in
  spin ()

let store t key snapshot =
  match Hashtbl.find_opt t.table key with
  | Some e ->
    e.e_snap <- snapshot;
    e.referenced <- true
  | None ->
    let slot =
      if t.occupied < t.capacity then begin
        let s = t.occupied in
        t.occupied <- t.occupied + 1;
        s
      end
      else evict_one t
    in
    let e = { e_key = key; e_snap = snapshot; referenced = false } in
    t.slots.(slot) <- Some e;
    Hashtbl.replace t.table key e

let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.eviction_count

(* ---------------- per-domain sharding ---------------- *)

(* One shard per worker domain. A shard is owned exclusively by its
   domain while a batch runs (the pool's barrier is the hand-off edge),
   so the hot prefix-lookup path crosses no mutex and no shared cache
   line; only [flush_metrics] — called at batch boundaries — touches
   the shared registry. *)
type sharded = { shards : t array }

let create_sharded ?capacity ?metrics ~shards () =
  let n = Stdlib.max 1 shards in
  { shards = Array.init n (fun _ -> create ?capacity ?metrics ()) }

let shard s i = s.shards.(i mod Array.length s.shards)
let shard_count s = Array.length s.shards

let total f s = Array.fold_left (fun acc t -> acc + f t) 0 s.shards

let total_hits = total hits
let total_misses = total misses
let total_evictions = total evictions

let flush_sharded_metrics s = Array.iter flush_metrics s.shards
