type sequence_mode = Seq_random | Seq_dataflow | Seq_dataflow_repeat

type t = {
  rng_seed : int64;
  jobs : int;
  round_batch : int;
  round_batch_auto : bool;
  max_executions : int;
  gas_per_tx : int;
  n_senders : int;
  initial_seeds : int;
  base_energy : int;
  max_energy : int;
  sequence_mode : sequence_mode;
  mask_guided : bool;
  dynamic_energy : bool;
  distance_feedback : bool;
  prolongation : bool;
  blackbox : bool;
  mask_stride : int;
  mask_cache_max : int;
  mask_max_probes : int;
  mask_budget_fraction : float;
  sequence_mutation_prob : float;
  (* input prediction (hybrid fuzzing): solve magic values for frontier
     branches from recorded comparison operands *)
  predict : bool;
  predict_attempts : int;  (* failed flips of a branch before prediction fires *)
  predict_max_candidates : int;  (* proposal executions per firing *)
  attacker_enabled : bool;
  state_caching : bool;
  initial_corpus : Seed.t list;
  strict_corpus : bool;
  prefix_params : Analysis.Prefix.params;
  (* telemetry — both default to off, keeping the no-op-bus guarantee *)
  trace_path : string option;
  status_interval : float;
  (* stopping + persistence *)
  max_seconds : float;
  checkpoint_dir : string option;
  checkpoint_every_execs : int;
  checkpoint_every_seconds : float;
  checkpoint_keep : int;
}

let default =
  {
    rng_seed = 42L;
    jobs = 1;
    round_batch = 2;
    round_batch_auto = false;
    max_executions = 2000;
    gas_per_tx = 1_000_000;
    n_senders = 3;
    initial_seeds = 8;
    base_energy = 20;
    max_energy = 120;
    sequence_mode = Seq_dataflow_repeat;
    mask_guided = true;
    dynamic_energy = true;
    distance_feedback = true;
    prolongation = false;
    blackbox = false;
    mask_stride = 8;
    mask_cache_max = 32;
    mask_max_probes = 24;
    mask_budget_fraction = 0.15;
    sequence_mutation_prob = 0.15;
    predict = false;
    predict_attempts = 25;
    predict_max_candidates = 12;
    attacker_enabled = true;
    state_caching = true;
    initial_corpus = [];
    strict_corpus = false;
    prefix_params = Analysis.Prefix.default_params;
    trace_path = None;
    status_interval = 0.0;
    max_seconds = 0.0;
    checkpoint_dir = None;
    checkpoint_every_execs = 500;
    checkpoint_every_seconds = 0.0;
    checkpoint_keep = 3;
  }

let with_budget t budget = { t with max_executions = budget }

let ablation_no_sequence t = { t with sequence_mode = Seq_random }
let ablation_no_mask t = { t with mask_guided = false }
let ablation_no_energy t = { t with dynamic_energy = false }

(* ---------------- JSON codec (campaign checkpoints) ---------------- *)

module J = Telemetry.Json

let sequence_mode_to_string = function
  | Seq_random -> "random"
  | Seq_dataflow -> "dataflow"
  | Seq_dataflow_repeat -> "dataflow-repeat"

let sequence_mode_of_string = function
  | "random" -> Ok Seq_random
  | "dataflow" -> Ok Seq_dataflow
  | "dataflow-repeat" -> Ok Seq_dataflow_repeat
  | s -> Error (Printf.sprintf "config: unknown sequence mode %S" s)

let to_json t =
  J.Obj
    [
      (* int64 seeds exceed the 63-bit [J.Int] range; ship as decimal *)
      ("rng_seed", J.String (Int64.to_string t.rng_seed));
      ("jobs", J.Int t.jobs);
      ("round_batch", J.Int t.round_batch);
      ("round_batch_auto", J.Bool t.round_batch_auto);
      ("max_executions", J.Int t.max_executions);
      ("gas_per_tx", J.Int t.gas_per_tx);
      ("n_senders", J.Int t.n_senders);
      ("initial_seeds", J.Int t.initial_seeds);
      ("base_energy", J.Int t.base_energy);
      ("max_energy", J.Int t.max_energy);
      ("sequence_mode", J.String (sequence_mode_to_string t.sequence_mode));
      ("mask_guided", J.Bool t.mask_guided);
      ("dynamic_energy", J.Bool t.dynamic_energy);
      ("distance_feedback", J.Bool t.distance_feedback);
      ("prolongation", J.Bool t.prolongation);
      ("blackbox", J.Bool t.blackbox);
      ("mask_stride", J.Int t.mask_stride);
      ("mask_cache_max", J.Int t.mask_cache_max);
      ("mask_max_probes", J.Int t.mask_max_probes);
      ("mask_budget_fraction", J.Float t.mask_budget_fraction);
      ("sequence_mutation_prob", J.Float t.sequence_mutation_prob);
      ("predict", J.Bool t.predict);
      ("predict_attempts", J.Int t.predict_attempts);
      ("predict_max_candidates", J.Int t.predict_max_candidates);
      ("attacker_enabled", J.Bool t.attacker_enabled);
      ("state_caching", J.Bool t.state_caching);
      ("initial_corpus", J.List (List.map Seed.to_json t.initial_corpus));
      ("strict_corpus", J.Bool t.strict_corpus);
      ("nested_coeff", J.Float t.prefix_params.Analysis.Prefix.nested_coeff);
      ("vuln_bonus", J.Float t.prefix_params.Analysis.Prefix.vuln_bonus);
      ( "trace_path",
        match t.trace_path with None -> J.Null | Some p -> J.String p );
      ("status_interval", J.Float t.status_interval);
      ("max_seconds", J.Float t.max_seconds);
      ( "checkpoint_dir",
        match t.checkpoint_dir with None -> J.Null | Some d -> J.String d );
      ("checkpoint_every_execs", J.Int t.checkpoint_every_execs);
      ("checkpoint_every_seconds", J.Float t.checkpoint_every_seconds);
      ("checkpoint_keep", J.Int t.checkpoint_keep);
    ]

let of_json ~abi j =
  let ( let* ) = Result.bind in
  let field name conv =
    match Option.bind (J.member name j) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "config: missing or invalid field %s" name)
  in
  let int name = field name J.to_int in
  let flt name = field name J.to_float in
  let bol name = field name J.to_bool in
  let str name = field name J.string_value in
  let opt_str name =
    match J.member name j with
    | Some J.Null | None -> Ok None
    | Some v -> (
      match J.string_value v with
      | Some s -> Ok (Some s)
      | None -> Error (Printf.sprintf "config: field %s must be a string or null" name))
  in
  let* rng_seed =
    let* s = str "rng_seed" in
    match Int64.of_string_opt s with
    | Some v -> Ok v
    | None -> Error "config: rng_seed is not a 64-bit decimal"
  in
  let* jobs = int "jobs" in
  let* round_batch = int "round_batch" in
  let* max_executions = int "max_executions" in
  let* gas_per_tx = int "gas_per_tx" in
  let* n_senders = int "n_senders" in
  let* initial_seeds = int "initial_seeds" in
  let* base_energy = int "base_energy" in
  let* max_energy = int "max_energy" in
  let* sequence_mode = Result.bind (str "sequence_mode") sequence_mode_of_string in
  let* mask_guided = bol "mask_guided" in
  let* dynamic_energy = bol "dynamic_energy" in
  let* distance_feedback = bol "distance_feedback" in
  let* prolongation = bol "prolongation" in
  let* blackbox = bol "blackbox" in
  let* mask_stride = int "mask_stride" in
  let* mask_cache_max = int "mask_cache_max" in
  let* mask_max_probes = int "mask_max_probes" in
  let* mask_budget_fraction = flt "mask_budget_fraction" in
  let* sequence_mutation_prob = flt "sequence_mutation_prob" in
  (* the predict knobs post-date checkpoint format v1; decode them with
     defaults so pre-prediction checkpoints keep loading *)
  let opt_with dflt name conv =
    match J.member name j with
    | None -> Ok dflt
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "config: missing or invalid field %s" name))
  in
  (* round_batch_auto post-dates snapshot v2 likewise *)
  let* round_batch_auto =
    opt_with default.round_batch_auto "round_batch_auto" J.to_bool
  in
  let* predict = opt_with default.predict "predict" J.to_bool in
  let* predict_attempts =
    opt_with default.predict_attempts "predict_attempts" J.to_int
  in
  let* predict_max_candidates =
    opt_with default.predict_max_candidates "predict_max_candidates" J.to_int
  in
  let* attacker_enabled = bol "attacker_enabled" in
  let* state_caching = bol "state_caching" in
  let* initial_corpus =
    let* l = field "initial_corpus" J.to_list in
    List.fold_left
      (fun acc s ->
        let* acc = acc in
        let* seed = Seed.of_json ~abi s in
        Ok (seed :: acc))
      (Ok []) l
    |> Result.map List.rev
  in
  let* strict_corpus = bol "strict_corpus" in
  let* nested_coeff = flt "nested_coeff" in
  let* vuln_bonus = flt "vuln_bonus" in
  let* trace_path = opt_str "trace_path" in
  let* status_interval = flt "status_interval" in
  let* max_seconds = flt "max_seconds" in
  let* checkpoint_dir = opt_str "checkpoint_dir" in
  let* checkpoint_every_execs = int "checkpoint_every_execs" in
  let* checkpoint_every_seconds = flt "checkpoint_every_seconds" in
  let* checkpoint_keep = int "checkpoint_keep" in
  Ok
    {
      rng_seed;
      jobs;
      round_batch;
      round_batch_auto;
      max_executions;
      gas_per_tx;
      n_senders;
      initial_seeds;
      base_energy;
      max_energy;
      sequence_mode;
      mask_guided;
      dynamic_energy;
      distance_feedback;
      prolongation;
      blackbox;
      mask_stride;
      mask_cache_max;
      mask_max_probes;
      mask_budget_fraction;
      sequence_mutation_prob;
      predict;
      predict_attempts;
      predict_max_candidates;
      attacker_enabled;
      state_caching;
      initial_corpus;
      strict_corpus;
      prefix_params = { Analysis.Prefix.nested_coeff; vuln_bonus };
      trace_path;
      status_interval;
      max_seconds;
      checkpoint_dir;
      checkpoint_every_execs;
      checkpoint_every_seconds;
      checkpoint_keep;
    }
