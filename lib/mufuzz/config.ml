type sequence_mode = Seq_random | Seq_dataflow | Seq_dataflow_repeat

type t = {
  rng_seed : int64;
  jobs : int;
  max_executions : int;
  gas_per_tx : int;
  n_senders : int;
  initial_seeds : int;
  base_energy : int;
  max_energy : int;
  sequence_mode : sequence_mode;
  mask_guided : bool;
  dynamic_energy : bool;
  distance_feedback : bool;
  prolongation : bool;
  blackbox : bool;
  mask_stride : int;
  mask_cache_max : int;
  mask_max_probes : int;
  mask_budget_fraction : float;
  sequence_mutation_prob : float;
  attacker_enabled : bool;
  state_caching : bool;
  initial_corpus : Seed.t list;
  strict_corpus : bool;
  prefix_params : Analysis.Prefix.params;
  (* telemetry — both default to off, keeping the no-op-bus guarantee *)
  trace_path : string option;
  status_interval : float;
}

let default =
  {
    rng_seed = 42L;
    jobs = 1;
    max_executions = 2000;
    gas_per_tx = 1_000_000;
    n_senders = 3;
    initial_seeds = 8;
    base_energy = 20;
    max_energy = 120;
    sequence_mode = Seq_dataflow_repeat;
    mask_guided = true;
    dynamic_energy = true;
    distance_feedback = true;
    prolongation = false;
    blackbox = false;
    mask_stride = 8;
    mask_cache_max = 32;
    mask_max_probes = 24;
    mask_budget_fraction = 0.15;
    sequence_mutation_prob = 0.15;
    attacker_enabled = true;
    state_caching = true;
    initial_corpus = [];
    strict_corpus = false;
    prefix_params = Analysis.Prefix.default_params;
    trace_path = None;
    status_interval = 0.0;
  }

let with_budget t budget = { t with max_executions = budget }

let ablation_no_sequence t = { t with sequence_mode = Seq_random }
let ablation_no_mask t = { t with mask_guided = false }
let ablation_no_energy t = { t with dynamic_energy = false }
