module U = Word.U256

let deployer = Accounts.deployer

(* The first pool slot is the simulated reentrancy attacker, so seeds
   naturally exercise the callback path when it is chosen as a sender. *)
let sender_pool = Accounts.sender_pool

let contract_address = Accounts.contract_address

(* Enough to fund any plausible sequence of value transfers without a
   sender ever running dry. *)
let initial_balance = U.shift_left U.one 200

type tx_result = Executor_types.tx_result = {
  tx_index : int;
  fn_name : string;
  success : bool;
  trace : Evm.Trace.t;
}

type run = {
  tx_results : tx_result list;
  final_state : Evm.State.t;
  received_value : bool;
  executed_steps : int;
  logical_steps : int;
}

(* Post-deploy world state memo. Every seed execution previously
   re-deployed the contract (running its init code through the
   interpreter) and re-credited the account pool; both are pure
   functions of (contract, n_senders), and [Evm.State.t] is immutable,
   so the resulting state can be shared freely. Keyed by physical
   equality on the contract — a campaign fuzzes a handful of contract
   values, each a single shared allocation. Domain-local so the memo is
   lock-free under the parallel runner. *)
let initial_state_memo :
    (Minisol.Contract.t * int * Evm.State.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_capacity = 8

let initial_state_for ~contract ~n_senders senders =
  let memo = Domain.DLS.get initial_state_memo in
  let rec find = function
    | [] -> None
    | (c, n, st) :: rest ->
      if c == contract && n = n_senders then Some st else find rest
  in
  match find !memo with
  | Some st -> st
  | None ->
    let st = Minisol.Contract.deploy Evm.State.empty contract_address contract in
    let st = Evm.State.credit st deployer initial_balance in
    let st =
      Array.fold_left (fun st s -> Evm.State.credit st s initial_balance) st senders
    in
    let kept =
      if List.length !memo >= memo_capacity then
        List.filteri (fun i _ -> i < memo_capacity - 1) !memo
      else !memo
    in
    memo := (contract, n_senders, st) :: kept;
    st

let run_seed ~contract ~gas ~n_senders ~attacker ?cache ?metrics (seed : Seed.t) =
  let senders = Array.of_list (sender_pool n_senders) in
  let initial_state = initial_state_for ~contract ~n_senders senders in
  let config =
    if attacker then Evm.Interp.default_config
    else { Evm.Interp.default_config with attacker = None }
  in
  let txs = Array.of_list seed.txs in
  let n = Array.length txs in
  (* chained prefix digests: digests.(i) identifies txs.(0 .. i-1) *)
  let digests = Array.make (n + 1) "" in
  (match cache with
  | Some _ ->
    for i = 1 to n do
      digests.(i) <- State_cache.digest_tx digests.(i - 1) txs.(i - 1)
    done
  | None -> ());
  (* resume from the deepest cached prefix *)
  let start, state0, block0, prefix_results, rv0 =
    match cache with
    | None -> (0, initial_state, Evm.Interp.default_block, [], false)
    | Some c ->
      let rec probe k =
        if k = 0 then (0, initial_state, Evm.Interp.default_block, [], false)
        else
          match State_cache.find c digests.(k) with
          | Some (s : State_cache.snapshot) ->
            (k, s.state, s.block, s.tx_results, s.received_value)
          | None -> probe (k - 1)
      in
      probe n
  in
  (match metrics with
  | Some m ->
    if start > 0 then
      Telemetry.Metrics.incr
        (Telemetry.Metrics.counter m "mufuzz_cache_prefix_hits_total"
           ~help:"seed executions resumed from a cached state prefix");
    Telemetry.Metrics.add
      (Telemetry.Metrics.counter m "mufuzz_txs_total"
         ~help:"transactions executed (cached prefixes excluded)")
      (n - start)
  | None -> ());
  let gas_histogram =
    match metrics with
    | Some m ->
      Some
        (Telemetry.Metrics.histogram m "mufuzz_tx_gas_used"
           ~help:"gas used per executed transaction")
    | None -> None
  in
  let state = ref state0 in
  let block = ref block0 in
  let received_value = ref rv0 in
  let results_rev = ref (List.rev prefix_results) in
  (* Opcode dispatches this call actually performed: cached-prefix
     transactions are excluded, mirroring mufuzz_txs_total. *)
  let executed_steps = ref 0 in
  for i = start to n - 1 do
    let tx = txs.(i) in
    let caller =
      if tx.fn.Abi.is_constructor then deployer
      else senders.(tx.sender mod Stdlib.max 1 (Array.length senders))
    in
    let value = Seed.tx_value tx in
    let msg =
      {
        Evm.Interp.caller;
        origin = caller;
        callee = contract_address;
        value;
        data = Seed.tx_calldata tx;
        gas;
      }
    in
    let st', trace = Evm.Interp.execute ~config ~block:!block ~state:!state msg in
    executed_steps := !executed_steps + trace.steps;
    (match gas_histogram with
    | Some h -> Telemetry.Metrics.observe h (float_of_int trace.gas_used)
    | None -> ());
    state := st';
    block := Evm.Interp.advance_block !block;
    let success = Evm.Trace.succeeded trace in
    (* constructor endowments don't count: the EF oracle asks whether the
       contract accepts deposits in normal operation *)
    if success && (not (U.is_zero value)) && not tx.fn.Abi.is_constructor then
      received_value := true;
    results_rev := { tx_index = i; fn_name = tx.fn.Abi.name; success; trace }
                   :: !results_rev;
    match cache with
    | Some c ->
      State_cache.store c digests.(i + 1)
        {
          State_cache.state = !state;
          block = !block;
          tx_results = List.rev !results_rev;
          received_value = !received_value;
        }
    | None -> ()
  done;
  (match metrics with
  | Some m ->
    Telemetry.Metrics.add
      (Telemetry.Metrics.counter m "mufuzz_evm_steps_total"
         ~help:"EVM opcodes dispatched (cached prefixes excluded)")
      !executed_steps
  | None -> ());
  let tx_results = List.rev !results_rev in
  {
    tx_results;
    final_state = !state;
    received_value = !received_value;
    executed_steps = !executed_steps;
    (* cached-prefix traces are part of [tx_results] (snapshots store
       them), so the logical total is computable without re-execution *)
    logical_steps =
      List.fold_left (fun acc (r : tx_result) -> acc + r.trace.steps) 0 tx_results;
  }

let inspect ~static (run : run) =
  Oracles.Oracle.inspect_campaign ~static ~received_value:run.received_value
    (List.map (fun (r : tx_result) -> (r.tx_index, r.success, r.trace))
       run.tx_results)

let findings ~contract ~gas ~n_senders ~attacker ?cache seed =
  let run = run_seed ~contract ~gas ~n_senders ~attacker ?cache seed in
  inspect ~static:(Oracles.Oracle.static_info_of contract) run
