module U = Word.U256

let deployer = Accounts.deployer

(* The first pool slot is the simulated reentrancy attacker, so seeds
   naturally exercise the callback path when it is chosen as a sender. *)
let sender_pool = Accounts.sender_pool

let contract_address = Accounts.contract_address

(* Enough to fund any plausible sequence of value transfers without a
   sender ever running dry. *)
let initial_balance = U.shift_left U.one 200

type tx_result = Executor_types.tx_result = {
  tx_index : int;
  fn_name : string;
  success : bool;
  trace : Evm.Trace.t;
}

type run = {
  tx_results : tx_result list;
  final_state : Evm.State.t;
  received_value : bool;
  executed_steps : int;
  logical_steps : int;
}

(* Post-deploy world state memo. Every seed execution previously
   re-deployed the contract (running its init code through the
   interpreter) and re-credited the account pool; both are pure
   functions of (contract, n_senders), and [Evm.State.t] is immutable,
   so the resulting state can be shared freely. Keyed by physical
   equality on the contract — a campaign fuzzes a handful of contract
   values, each a single shared allocation. Domain-local so the memo is
   lock-free under the parallel runner. *)
let initial_state_memo :
    (Minisol.Contract.t * int * Evm.State.t) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_capacity = 8

let initial_state_for ~contract ~n_senders senders =
  let memo = Domain.DLS.get initial_state_memo in
  let rec find = function
    | [] -> None
    | (c, n, st) :: rest ->
      if c == contract && n = n_senders then Some st else find rest
  in
  match find !memo with
  | Some st -> st
  | None ->
    let st = Minisol.Contract.deploy Evm.State.empty contract_address contract in
    let st = Evm.State.credit st deployer initial_balance in
    (* the deployer closes the caller pool but is already funded above —
       crediting it again would shift balances against pre-pool states *)
    let st =
      Array.fold_left
        (fun st s ->
          if U.equal s deployer then st else Evm.State.credit st s initial_balance)
        st senders
    in
    let kept =
      if List.length !memo >= memo_capacity then
        List.filteri (fun i _ -> i < memo_capacity - 1) !memo
      else !memo
    in
    memo := (contract, n_senders, st) :: kept;
    st

(* Batch execution context. Everything [run_seed] used to redo per
   call — sender-pool materialisation, post-deploy state lookup,
   interpreter config, and above all telemetry handle resolution
   ([Telemetry.Metrics.counter] takes the registry mutex; resolving
   per execution made that mutex the parallel campaign's hottest
   lock) — is done once here. Per-execution telemetry accumulates in
   {!Telemetry.Metrics.Local} views and reaches the shared registry
   only on [flush], so the execution hot loop touches no cross-domain
   cache line at all.

   A ctx belongs to one domain at a time: the local metric views and
   the (optional) cache shard are unsynchronised by design. The
   parallel campaign builds one ctx per worker domain; hand-off is the
   pool's batch barrier. *)
type ctx = {
  x_gas : int;
  x_senders : Evm.State.address array;
  x_config : Evm.Interp.config;
  x_initial_state : Evm.State.t;
  x_cache : State_cache.t option;
  x_txs : Telemetry.Metrics.Local.lcounter option;
  x_steps : Telemetry.Metrics.Local.lcounter option;
  x_prefix_hits : Telemetry.Metrics.Local.lcounter option;
  x_gas_hist : Telemetry.Metrics.Local.lhistogram option;
}

let make_ctx ~contract ~gas ~n_senders ~attacker ?cache ?metrics () =
  let senders = Array.of_list (Accounts.caller_pool n_senders) in
  Evm.Interp.preheat ();
  let local_counter m name help =
    Telemetry.Metrics.Local.counter (Telemetry.Metrics.counter m name ~help)
  in
  {
    x_gas = gas;
    x_senders = senders;
    x_config =
      (if attacker then Evm.Interp.default_config
       else { Evm.Interp.default_config with attacker = None });
    x_initial_state = initial_state_for ~contract ~n_senders senders;
    x_cache = cache;
    x_txs =
      Option.map
        (fun m ->
          local_counter m "mufuzz_txs_total"
            "transactions executed (cached prefixes excluded)")
        metrics;
    x_steps =
      Option.map
        (fun m ->
          local_counter m "mufuzz_evm_steps_total"
            "EVM opcodes dispatched (cached prefixes excluded)")
        metrics;
    x_prefix_hits =
      Option.map
        (fun m ->
          local_counter m "mufuzz_cache_prefix_hits_total"
            "seed executions resumed from a cached state prefix")
        metrics;
    x_gas_hist =
      Option.map
        (fun m ->
          Telemetry.Metrics.Local.histogram
            (Telemetry.Metrics.histogram m "mufuzz_tx_gas_used"
               ~help:"gas used per executed transaction"))
        metrics;
  }

let flush ctx =
  let fc = Option.iter Telemetry.Metrics.Local.flush_counter in
  fc ctx.x_txs;
  fc ctx.x_steps;
  fc ctx.x_prefix_hits;
  Option.iter Telemetry.Metrics.Local.flush_histogram ctx.x_gas_hist;
  Option.iter State_cache.flush_metrics ctx.x_cache

let run_in_ctx ctx (seed : Seed.t) =
  let gas = ctx.x_gas in
  let senders = ctx.x_senders in
  let cache = ctx.x_cache in
  let config = ctx.x_config in
  let txs = Array.of_list seed.txs in
  let n = Array.length txs in
  (* chained prefix digests: digests.(i) identifies txs.(0 .. i-1) *)
  let digests = Array.make (n + 1) "" in
  (match cache with
  | Some _ ->
    for i = 1 to n do
      digests.(i) <- State_cache.digest_tx digests.(i - 1) txs.(i - 1)
    done
  | None -> ());
  (* resume from the deepest cached prefix *)
  let start, state0, block0, prefix_results, rv0 =
    match cache with
    | None -> (0, ctx.x_initial_state, Evm.Interp.default_block, [], false)
    | Some c ->
      let rec probe k =
        if k = 0 then (0, ctx.x_initial_state, Evm.Interp.default_block, [], false)
        else
          match State_cache.find c digests.(k) with
          | Some (s : State_cache.snapshot) ->
            (k, s.state, s.block, s.tx_results, s.received_value)
          | None -> probe (k - 1)
      in
      probe n
  in
  if start > 0 then Option.iter Telemetry.Metrics.Local.incr ctx.x_prefix_hits;
  Option.iter (fun l -> Telemetry.Metrics.Local.add l (n - start)) ctx.x_txs;
  let state = ref state0 in
  let block = ref block0 in
  let received_value = ref rv0 in
  let results_rev = ref (List.rev prefix_results) in
  (* Opcode dispatches this call actually performed: cached-prefix
     transactions are excluded, mirroring mufuzz_txs_total. *)
  let executed_steps = ref 0 in
  for i = start to n - 1 do
    let tx = txs.(i) in
    let caller =
      if tx.fn.Abi.is_constructor then deployer
      else senders.(tx.sender mod Stdlib.max 1 (Array.length senders))
    in
    let value = Seed.tx_value tx in
    let msg =
      {
        Evm.Interp.caller;
        origin = caller;
        callee = contract_address;
        value;
        data = Seed.tx_calldata tx;
        gas;
      }
    in
    let st', trace = Evm.Interp.execute ~config ~block:!block ~state:!state msg in
    executed_steps := !executed_steps + trace.steps;
    (match ctx.x_gas_hist with
    | Some h -> Telemetry.Metrics.Local.observe h (float_of_int trace.gas_used)
    | None -> ());
    state := st';
    block := Evm.Interp.advance_block !block;
    let success = Evm.Trace.succeeded trace in
    (* constructor endowments don't count: the EF oracle asks whether the
       contract accepts deposits in normal operation *)
    if success && (not (U.is_zero value)) && not tx.fn.Abi.is_constructor then
      received_value := true;
    results_rev := { tx_index = i; fn_name = tx.fn.Abi.name; success; trace }
                   :: !results_rev;
    match cache with
    | Some c ->
      State_cache.store c digests.(i + 1)
        {
          State_cache.state = !state;
          block = !block;
          tx_results = List.rev !results_rev;
          received_value = !received_value;
        }
    | None -> ()
  done;
  Option.iter
    (fun l -> Telemetry.Metrics.Local.add l !executed_steps)
    ctx.x_steps;
  let tx_results = List.rev !results_rev in
  {
    tx_results;
    final_state = !state;
    received_value = !received_value;
    executed_steps = !executed_steps;
    (* cached-prefix traces are part of [tx_results] (snapshots store
       them), so the logical total is computable without re-execution *)
    logical_steps =
      List.fold_left (fun acc (r : tx_result) -> acc + r.trace.steps) 0 tx_results;
  }

(* One dispatch pass over a whole seed population (the CuEVM shape):
   the context's pooled frames, memoized post-deploy state and resolved
   metric handles are reused across every seed, and telemetry reaches
   the shared registry exactly once. Seeds run in list order, so with a
   cache each seed sees the prefixes stored by its predecessors — the
   same warmth a per-seed loop over the same ctx would produce. *)
let run_batch ctx seeds =
  let runs = List.map (run_in_ctx ctx) seeds in
  flush ctx;
  runs

let run_seed ~contract ~gas ~n_senders ~attacker ?cache ?metrics (seed : Seed.t) =
  let ctx = make_ctx ~contract ~gas ~n_senders ~attacker ?cache ?metrics () in
  let r = run_in_ctx ctx seed in
  flush ctx;
  r

let inspect ~static (run : run) =
  Oracles.Oracle.inspect_campaign ~static ~received_value:run.received_value
    (List.map (fun (r : tx_result) -> (r.tx_index, r.success, r.trace))
       run.tx_results)

let findings ~contract ~gas ~n_senders ~attacker ?cache seed =
  let run = run_seed ~contract ~gas ~n_senders ~attacker ?cache seed in
  inspect ~static:(Oracles.Oracle.static_info_of contract) run
