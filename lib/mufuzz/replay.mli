(** Seed serialisation and corpus persistence.

    A seed serialises to one line per transaction
    ([fn_name sender hex_stream]) with seeds separated by blank lines —
    stable across sessions, so a saved queue can bootstrap a later
    campaign ([Config.initial_corpus]) or replay a witness exactly. *)

val tx_to_line : Seed.tx -> string

val seed_to_string : Seed.t -> string

exception Corrupt of string

val seed_of_string : abi:Abi.func list -> string -> Seed.t
(** @raise Corrupt when a line is malformed or names an unknown
    function. *)

val tx_of_parts :
  abi:Abi.func list -> name:string -> sender:int -> hex:string -> Seed.tx
(** Resolve one transaction from its serialised parts — the shared
    decoder behind {!seed_of_string} and the triage artifact format.
    @raise Corrupt on an unknown function, negative sender or bad hex. *)

val save_corpus : string -> Seed.t list -> unit

val load_corpus :
  abi:Abi.func list -> string -> Seed.t list * (int * string) list
(** Tolerant corpus load: the seeds that parsed, in file order, plus
    one [(block_index, reason)] per corrupt block skipped — a damaged
    seed never discards the rest of the corpus. (Use
    {!seed_of_string}, which still raises {!Corrupt}, when a parse
    must be strict.)
    @raise Sys_error on an unreadable file. *)
