(** Campaign configuration.

    The three feature switches correspond exactly to the paper's ablation
    (Fig. 7): disabling [sequence_aware] falls back to random transaction
    ordering, disabling [mask_guided] falls back to unrestricted random
    byte mutation, disabling [dynamic_energy] uses a flat per-seed energy
    (the sFuzz default the paper substitutes in). *)

(** How initial transaction orderings are produced. *)
type sequence_mode =
  | Seq_random  (** shuffled order (sFuzz) *)
  | Seq_dataflow  (** write->read topological order (Smartian/ConFuzzius) *)
  | Seq_dataflow_repeat
      (** dataflow order plus the RAW repetition rule — full §IV-A *)

type t = {
  rng_seed : int64;  (** all campaign randomness derives from this *)
  jobs : int;
      (** worker domains for {!Campaign.run_parallel}; [1] (the default)
          runs the sequential loop bit-for-bit — parallelism is opt-in *)
  round_batch : int;
      (** seeds each worker domain fuzzes per parallel round (default 2):
          the coordinator ships [jobs * round_batch] seed-energy groups
          per merge barrier, so larger values amortise coordination at
          the cost of staler worker coverage snapshots; ignored at
          [jobs = 1] *)
  round_batch_auto : bool;
      (** auto-tune the round batch between merge barriers (CLI
          [--round-batch auto]): a hysteretic controller widens the
          batch when workers spend too much of a round stalled or the
          coordinator too long merge-waiting, and narrows it back when
          coordination is cheap; [round_batch] then only sets the
          starting width. The controller state is checkpointed so a
          resumed campaign continues the same trajectory. Ignored at
          [jobs = 1] *)
  max_executions : int;  (** transaction-sequence executions budget *)
  gas_per_tx : int;
  n_senders : int;  (** size of the sender account pool *)
  initial_seeds : int;  (** seeds generated before the main loop *)
  base_energy : int;  (** mutations per selected seed *)
  max_energy : int;  (** cap after dynamic weighting *)
  (* feature switches (ablation study, Fig. 7, and baseline policies) *)
  sequence_mode : sequence_mode;
  mask_guided : bool;
  dynamic_energy : bool;
  distance_feedback : bool;
      (** branch-distance seed selection (sFuzz-style); disabled it falls
          back to round-robin *)
  prolongation : bool;
      (** IR-Fuzz-style tail prolongation: initial seeds get extra random
          transactions appended *)
  blackbox : bool;
      (** ContractFuzzer-style black-box mode: every round generates a
          fresh random seed; no queue, no feedback (coverage is still
          recorded for reporting) *)
  (* mask computation cost controls *)
  mask_stride : int;
      (** compute the mask every [stride] positions (1 = Algorithm 2
          verbatim); larger strides trade fidelity for speed *)
  mask_cache_max : int;  (** number of seeds holding a cached mask *)
  mask_max_probes : int;  (** execution cap for one Algorithm-2 run *)
  mask_budget_fraction : float;
      (** share of the campaign budget mask probing may consume in total;
          beyond it seeds mutate unmasked (keeps Algorithm 2 from starving
          exploration under small budgets) *)
  (* runtime sequence exploration *)
  sequence_mutation_prob : float;
      (** probability a selected seed also gets a sequence-level mutation
          (extend / duplicate / swap), §IV-A's continuing exploration *)
  (* input prediction (hybrid fuzzing, ROADMAP item 3) *)
  predict : bool;
      (** solve magic values for stuck frontier branches from the
          comparison operands recorded in traces (Harvey-style); [false]
          (the default) keeps campaigns bit-for-bit identical to
          pre-prediction builds *)
  predict_attempts : int;
      (** times a frontier branch must be reached without flipping before
          the prediction phase fires for it *)
  predict_max_candidates : int;
      (** cap on proposal executions one prediction firing may spend *)
  attacker_enabled : bool;  (** install the reentrancy attacker account *)
  state_caching : bool;
      (** resume sequences from cached intermediate states (the paper's
          §VI future-work optimisation); semantically transparent *)
  initial_corpus : Seed.t list;
      (** seeds executed and enqueued before generation starts (corpus
          resume / replay); empty by default *)
  strict_corpus : bool;
      (** treat corrupt corpus blocks as fatal: consumers that load a
          corpus (the CLI, the bench harness) must fail instead of
          fuzzing a silently smaller corpus; [false] by default *)
  prefix_params : Analysis.Prefix.params;
  (* observability (see {!Campaign}: a campaign builds its event bus
     from these plus any sinks the caller passes) *)
  trace_path : string option;
      (** write a JSONL event trace here; [None] (the default) attaches
          no trace sink *)
  status_interval : float;
      (** seconds between live status lines on stderr; [0.] (the
          default) disables the status sink *)
  max_seconds : float;
      (** wall-clock budget, checked alongside [max_executions] in both
          campaign loops; [0.] (the default) disables the time limit —
          keeping the default campaign free of clock reads, hence
          deterministic *)
  checkpoint_dir : string option;
      (** directory for crash-safe campaign checkpoints ([Persist]);
          [None] (the default) disables checkpointing *)
  checkpoint_every_execs : int;
      (** write a checkpoint every N sequence executions (at the next
          safe point); [0] disables the exec cadence *)
  checkpoint_every_seconds : float;
      (** also write when this many wall seconds have elapsed since the
          last checkpoint; [0.] (the default) disables the time cadence *)
  checkpoint_keep : int;  (** rotated checkpoints to keep on disk *)
}

val default : t
(** All three components enabled, deterministic seed 42, a budget suited
    to unit-scale contracts (2000 executions). *)

val with_budget : t -> int -> t

val ablation_no_sequence : t -> t
val ablation_no_mask : t -> t
val ablation_no_energy : t -> t

val sequence_mode_to_string : sequence_mode -> string

val sequence_mode_of_string : string -> (sequence_mode, string) result

val to_json : t -> Telemetry.Json.t
(** Checkpoint codec: the full configuration, with the int64 RNG seed as
    a decimal string and [initial_corpus] through the {!Seed} codec. *)

val of_json : abi:Abi.func list -> Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}. Strict: every field must be present, so a
    checkpoint from a config shape this build does not know is rejected
    rather than silently defaulted. *)
