(** The MuFuzz campaign: Algorithm 1's seed selection and mutation loop,
    wired to the sequence-aware derivation of §IV-A, the mask guidance of
    §IV-B and the dynamic energy adjustment of §IV-C.

    A campaign is fully deterministic given [Config.rng_seed]: every
    random draw flows from one SplitMix64 stream, and the EVM substrate
    is itself deterministic. *)

val run :
  ?config:Config.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  Minisol.Contract.t ->
  Report.t
(** Fuzz one contract until the execution budget is exhausted.

    Telemetry: the campaign emits {!Telemetry.Event.t} values to a bus
    assembled from [config.trace_path] / [config.status_interval] plus
    any [sinks] given here, and records counters/gauges into [metrics]
    (a private registry is created when omitted). With no sinks
    configured the bus is {!Telemetry.Bus.null} and every emission is a
    single array-length test, so default campaigns behave bit-for-bit
    as before. *)

val run_parallel :
  ?config:Config.t ->
  ?pool:Pool.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  Minisol.Contract.t ->
  Report.t
(** Multicore campaign: seed-energy batches are sharded across a
    {!Pool} of worker domains, each with its own executor state cache, a
    private RNG stream ({!Util.Rng.derive}) and a domain-local coverage
    map merged commutatively into the global map at batch boundaries.
    All seed-queue, mask-budget and energy updates are applied by the
    coordinator between rounds, so Algorithms 1-3 are semantically
    unchanged. With [jobs <= 1] (the [Config.default]) this IS {!run} —
    same code path, bit-for-bit identical results. Parallel runs are
    reproducible for a fixed [(rng_seed, jobs)] pair.

    An explicit [pool] overrides [config.jobs] and lets callers amortise
    domain spawning across many campaigns; otherwise a pool of
    [config.jobs] workers is created and shut down internally.

    Telemetry follows {!run}: workers emit [Exec_completed] and
    [Mask_updated] from their domains (the bus serialises sink calls),
    the coordinator emits queue/finding/energy events plus one
    [Batch_merge] and the per-round [New_branch_side] diff after each
    merge, and an internally created pool reports [Pool_steal] events
    through the same bus. *)

val run_many :
  ?config:Config.t -> ?pool:Pool.t -> Minisol.Contract.t list -> Report.t list
(** Batch mode: one sequential campaign per contract, sharded across the
    pool (the bench-harness granularity). Report order follows the input
    order. Without a pool (or with a 1-worker pool) this is [List.map]
    of {!run}. *)

val derive_sequence : Minisol.Contract.t -> string list
(** The §IV-A sequence for a contract (constructor excluded), exposed
    for examples and tests. *)
