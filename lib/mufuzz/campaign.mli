(** The MuFuzz campaign: Algorithm 1's seed selection and mutation loop,
    wired to the sequence-aware derivation of §IV-A, the mask guidance of
    §IV-B and the dynamic energy adjustment of §IV-C.

    A campaign is fully deterministic given [Config.rng_seed]: every
    random draw flows from one SplitMix64 stream, and the EVM substrate
    is itself deterministic. *)

(** One seed-pool member as persisted in a {!snapshot}: the seed, its
    cached execution feedback and any Algorithm-2 masks already paid
    for. *)
type snapshot_entry = {
  sn_seed : Seed.t;
  sn_path : (int * bool) list;  (** branch sides the seed covers *)
  sn_nested : (int * bool) list;  (** nested branch hits (mask baselines) *)
  sn_fdists : ((int * bool) * float) list;
      (** best distance toward each frontier side *)
  sn_masks : (int * Mask.t) list;  (** cached masks, by tx index *)
}

(** The complete mutable state of a campaign at a safe point — what
    [lib/persist] serialises into a checkpoint and what [?resume] feeds
    back in. Queue and distance pool share entries by physical identity
    (mask caches mutate them in place), so both are stored as indices
    into the deduplicated [sn_entries] pool; [sn_best] additionally
    records its table's iteration order so a resumed campaign replays
    the uninterrupted one bit-for-bit at [jobs = 1]. *)
exception Preempt
(** An [?on_safe_point] hook may raise this from a {e non-final} safe
    point to yield the campaign cooperatively: the loop exits at once
    with [Report.stop_reason = Preempted] and a normal (partial) report.
    The hook is expected to have forced the snapshot thunk first — the
    captured snapshot is the exact resume point, so
    [run ?resume:(path, snapshot)] later continues the campaign as if it
    had never stopped (report-equivalent at [jobs = 1]). This is the
    time-slice mechanism of the [Serve] scheduler. Raising from a
    [final:true] safe point is a programmer error (the exception would
    escape [run]). *)

type snapshot = {
  sn_execs : int;
  sn_steps : int;
  sn_mask_probes : int;  (** Algorithm-2 budget already consumed *)
  sn_cursor : int;  (** round-robin selection cursor *)
  sn_rng : int64;  (** {!Util.Rng.save} of the campaign stream *)
  sn_rng_counter : int;  (** worker streams dispatched (parallel) *)
  sn_elapsed : float;  (** wall seconds spent before the capture *)
  sn_entries : snapshot_entry array;  (** deduplicated entry pool *)
  sn_queue : int list;  (** selection queue, as pool indices *)
  sn_best : ((int * bool) * float * int) list;
      (** distance pool in table-iteration order: (frontier side, best
          distance, pool index) *)
  sn_coverage : Coverage.t;
  sn_weights : ((int * bool) * float) list option;
      (** Algorithm-3 weights; [None] when dynamic energy is off *)
  sn_findings : (Oracles.Oracle.finding * Seed.t) list;
      (** deduplicated findings with their witness seeds, oldest first *)
  sn_occ : (Oracles.Oracle.key * int) list;  (** occurrence counts *)
  sn_over_time : Report.checkpoint list;  (** coverage growth so far *)
  sn_attempts : ((int * bool) * int) list;
      (** flip-attempt counts per still-uncovered frontier side, sorted;
          drives the input-prediction trigger and is always [[]] when
          [Config.predict] is off *)
  sn_round_batch : int;
      (** current round batch width: fixed [Config.round_batch] unless
          [round_batch_auto], in which case the controller's live width
          (snapshot v3) — a resumed auto campaign continues the tuning
          trajectory instead of resetting *)
  sn_rb_votes : int;
      (** the auto-tune controller's signed hysteresis counter
          (snapshot v3); 0 when auto is off *)
  sn_predict_proposals : int;
      (** prediction proposal executions so far (snapshot v3), resumed
          into the report's [predict_proposals] total *)
}

val run :
  ?config:Config.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  ?resume:string * snapshot ->
  ?on_safe_point:
    (final:bool ->
    bus:Telemetry.Bus.t ->
    execs:int ->
    (unit -> snapshot) ->
    unit) ->
  Minisol.Contract.t ->
  Report.t
(** Fuzz one contract until the execution budget is exhausted.

    Persistence: [?on_safe_point] is invoked at every safe point — the
    top of each selection round (or black-box batch) and once more,
    with [final:true], when the loop exits. The thunk builds the
    {!snapshot} only if called, so an idle cadence costs nothing. With
    [?resume:(path, snapshot)] the campaign skips seed bootstrap,
    restores every structure from the snapshot (the [path] only labels
    the [Checkpoint_loaded] telemetry event), and continues; resumed
    sequential campaigns replay the uninterrupted run exactly, modulo
    wall-clock fields.

    Telemetry: the campaign emits {!Telemetry.Event.t} values to a bus
    assembled from [config.trace_path] / [config.status_interval] plus
    any [sinks] given here, and records counters/gauges into [metrics]
    (a private registry is created when omitted). With no sinks
    configured the bus is {!Telemetry.Bus.null} and every emission is a
    single array-length test, so default campaigns behave bit-for-bit
    as before. *)

val run_parallel :
  ?config:Config.t ->
  ?pool:Pool.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  ?resume:string * snapshot ->
  ?on_safe_point:
    (final:bool ->
    bus:Telemetry.Bus.t ->
    execs:int ->
    (unit -> snapshot) ->
    unit) ->
  Minisol.Contract.t ->
  Report.t
(** Multicore campaign: seed-energy batches are sharded across a
    {!Pool} of worker domains, each with its own executor state cache, a
    private RNG stream ({!Util.Rng.derive}) and a domain-local coverage
    map merged commutatively into the global map at batch boundaries.
    All seed-queue, mask-budget and energy updates are applied by the
    coordinator between rounds, so Algorithms 1-3 are semantically
    unchanged. With [jobs <= 1] (the [Config.default]) this IS {!run} —
    same code path, bit-for-bit identical results. Parallel runs are
    reproducible for a fixed [(rng_seed, jobs)] pair.

    An explicit [pool] overrides [config.jobs] and lets callers amortise
    domain spawning across many campaigns; otherwise a pool of
    [config.jobs] workers is created and shut down internally.

    Telemetry follows {!run}: workers emit [Exec_completed] and
    [Mask_updated] from their domains (the bus serialises sink calls),
    the coordinator emits queue/finding/energy events plus one
    [Batch_merge] and the per-round [New_branch_side] diff after each
    merge, and an internally created pool reports [Pool_steal] events
    through the same bus. *)

type failure = { failed_contract : string; failed_reason : string }
(** One corpus member whose deploy or campaign raised. Fleet-scale runs
    fold these into the aggregate report instead of dying on the first
    bad contract. *)

val run_result :
  ?config:Config.t ->
  ?sinks:Telemetry.Sink.t list ->
  ?metrics:Telemetry.Metrics.t ->
  ?resume:string * snapshot ->
  ?on_safe_point:
    (final:bool ->
    bus:Telemetry.Bus.t ->
    execs:int ->
    (unit -> snapshot) ->
    unit) ->
  Minisol.Contract.t ->
  (Report.t, failure) result
(** {!run}, but any exception the contract's deploy or campaign raises
    (including a {!Pool.Task_error} from a worker domain) is caught and
    returned as a structured {!failure}. {!Preempt} is re-raised — a
    cooperative yield is not a failure. *)

val run_many :
  ?config:Config.t ->
  ?pool:Pool.t ->
  Minisol.Contract.t list ->
  (Report.t, failure) result list
(** Batch mode: one sequential campaign per contract, sharded across the
    pool (the bench-harness granularity). Result order follows the input
    order; a contract that raises yields an [Error] entry and the rest
    of the population keeps fuzzing (fleet runs must survive bad corpus
    members). Without a pool (or with a 1-worker pool) this is
    [List.map] of {!run_result}. *)

val derive_sequence : Minisol.Contract.t -> string list
(** The §IV-A sequence for a contract (constructor excluded), exposed
    for examples and tests. *)
