let assign ~dynamic ~base ~max_energy ~weights ~path =
  if not dynamic then base
  else
    match weights with
    | None -> base
    | Some tbl ->
      let max_w =
        List.fold_left
          (fun acc br ->
            match Hashtbl.find_opt tbl br with
            | Some w -> Stdlib.max acc w
            | None -> acc)
          0.0 path
      in
      (* weight 0 -> base; each weight point buys a proportional slice of
         the remaining headroom, saturating at max_energy *)
      let scaled = float_of_int base *. (1.0 +. (max_w /. 4.0)) in
      Stdlib.min max_energy (int_of_float scaled)

let update energy ~new_coverage = if new_coverage then energy + 2 else energy - 1

(* ---------------- JSON codec (campaign checkpoints) ---------------- *)

module J = Telemetry.Json

(* Weights are only ever read through [Hashtbl.find_opt] in {!assign},
   so iteration order carries no semantics; emit a canonical sorted
   rendering. *)
let weights_to_json tbl =
  Hashtbl.fold (fun br w acc -> (br, w) :: acc) tbl []
  |> List.sort compare
  |> List.map (fun ((pc, taken), w) ->
         J.Obj [ ("pc", J.Int pc); ("taken", J.Bool taken); ("w", J.Float w) ])
  |> fun l -> J.List l

let weights_of_json j =
  let ( let* ) = Result.bind in
  match J.to_list j with
  | None -> Error "energy: expected a list of branch weights"
  | Some entries ->
    let tbl = Hashtbl.create 64 in
    let* () =
      List.fold_left
        (fun acc entry ->
          let* () = acc in
          match
            ( Option.bind (J.member "pc" entry) J.to_int,
              Option.bind (J.member "taken" entry) J.to_bool,
              Option.bind (J.member "w" entry) J.to_float )
          with
          | Some pc, Some taken, Some w ->
            Hashtbl.replace tbl (pc, taken) w;
            Ok ()
          | _ -> Error "energy: weight entry needs pc/taken/w")
        (Ok ()) entries
    in
    Ok tbl
