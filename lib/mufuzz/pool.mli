(** Work-stealing pool of stdlib [Domain]s (OCaml ≥ 5.1, no external
    dependencies).

    The campaign coordinator deals batches of seed-energy tasks across
    worker domains; each worker pops from its own deque and steals from a
    sibling when it runs dry, so an uneven batch (one seed with a long
    mask probe, say) does not leave cores idle. The pool is persistent —
    domains are spawned once and parked between batches — because a
    fuzzing round is far too short to amortise [Domain.spawn].

    One batch may be in flight at a time ({!run_batch} raises
    [Invalid_argument] on overlap); the pool itself is driven from a
    single coordinator domain. *)

type t

val create :
  ?bus:Telemetry.Bus.t -> ?metrics:Telemetry.Metrics.t -> jobs:int -> unit -> t
(** Spawn [max 1 jobs] worker domains, parked until work arrives.
    With [bus], every work-stealing event is emitted as
    [Pool_steal {thief; victim}]; with [metrics], workers record
    [mufuzz_pool_tasks_total] and [mufuzz_pool_steals_total] through
    lock-free counters, and the coordinator publishes the cumulative
    [mufuzz_pool_merge_wait_seconds] / [mufuzz_pool_worker_idle_seconds]
    gauges at the end of every batch. Both default to off (no
    overhead). *)

val size : t -> int
(** Number of worker domains. *)

val run_batch : t -> (int -> 'a) array -> 'a array
(** [run_batch t tasks] deals [tasks] round-robin across the workers and
    blocks until all complete, returning results in submission order.
    Each task receives the id (in [0 .. size-1]) of the worker that ran
    it, for indexing per-domain scratch state such as executor caches. *)

exception Task_error of exn
(** Raised by {!run_batch} / {!run_batch_iter} (after the whole batch
    has drained) when a task or merge raised; carries the first
    failure. *)

val run_batch_iter :
  t -> (int -> 'a) array -> merge:(int -> 'a -> unit) -> unit
(** Like {!run_batch}, but instead of a stop-the-world barrier followed
    by a serial merge pass, [merge i result] runs on the coordinator in
    submission order {e as each result completes} — merging task 0
    overlaps with workers still executing tasks 1..n. Submission order
    makes the merge sequence deterministic regardless of completion
    order, so campaign results are independent of scheduling. Returns
    once every task has drained and every merge has run. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f items] runs [f] on every item across the pool, preserving
    order — the cross-contract sharding used by the bench harness. *)

type stats = {
  tasks_run : int array;  (** per-worker completed task count *)
  busy_seconds : float array;  (** per-worker time spent inside tasks *)
  stall_seconds : float array;
      (** per-worker time parked while a batch was still in flight —
          waiting for siblings to finish so the coordinator can merge *)
  merge_wait_seconds : float;
      (** coordinator time blocked at batch barriers: inside
          {!run_batch}'s drain and {!run_batch_iter}'s per-index and
          final waits — the serial-phase cost the round-batch
          auto-tuner feeds on *)
  steals : int;  (** tasks taken from a sibling's deque *)
}

val stats : t -> stats
(** Cumulative since {!create}. *)

val shutdown : t -> unit
(** Drain, stop and join every worker domain. The pool must not be used
    afterwards. *)

val with_pool :
  ?bus:Telemetry.Bus.t -> ?metrics:Telemetry.Metrics.t -> jobs:int ->
  (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down, including on exceptions. *)
