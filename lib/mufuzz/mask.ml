type t = { bits : int array; stride : int }

type feedback = { hits_nested : bool; distance_decreased : bool }

let kind_bit k = 1 lsl Mutation.kind_index k

let all_bits = 0b1111

(* ---------------- staged probing ---------------- *)

type probe = {
  probe_pos : int;
  probe_kind : Mutation.kind;
  probe_stream : string;
}

type plan = { pl_len : int; pl_stride : int; pl_probes : probe array }

let plan rng ~stride ~max_probes stream =
  let len = String.length stream in
  if len = 0 then { pl_len = 0; pl_stride = 1; pl_probes = [||] }
  else begin
    let stride = Stdlib.max 1 stride in
    (* Algorithm 2 line 2: the mutation width n is drawn once. *)
    let n = 1 + Util.Rng.int rng (Stdlib.min 8 len) in
    let acc = ref [] in
    let probes = ref 0 in
    let i = ref 0 in
    while !i < len && !probes < max_probes do
      let pos = !i in
      List.iter
        (fun kind ->
          if !probes < max_probes then begin
            incr probes;
            let mutant = Mutation.apply rng { Mutation.kind; n } ~pos stream in
            acc :=
              { probe_pos = pos; probe_kind = kind; probe_stream = mutant }
              :: !acc
          end)
        Mutation.all_kinds;
      i := !i + stride
    done;
    { pl_len = len; pl_stride = stride; pl_probes = Array.of_list (List.rev !acc) }
  end

let probes pl = pl.pl_probes

let waves pl ~width =
  (* Chunk the probe sequence at stride-anchor boundaries: all probes
     sharing a position land in the same wave, so a wave is a whole
     number of Algorithm-2 lines. *)
  let width = Stdlib.max (List.length Mutation.all_kinds) width in
  let out = ref [] in
  let cur = ref [] in
  let cur_n = ref 0 in
  let cur_pos = ref (-1) in
  Array.iter
    (fun p ->
      if p.probe_pos <> !cur_pos && !cur_n + List.length Mutation.all_kinds > width
         && !cur_n > 0
      then begin
        out := Array.of_list (List.rev !cur) :: !out;
        cur := [];
        cur_n := 0
      end;
      cur_pos := p.probe_pos;
      cur := p :: !cur;
      incr cur_n)
    pl.pl_probes;
  if !cur_n > 0 then out := Array.of_list (List.rev !cur) :: !out;
  List.rev !out

let finish pl feedbacks =
  let bits = Array.make (Stdlib.max pl.pl_len 1) 0 in
  if pl.pl_len = 0 then { bits; stride = 1 }
  else begin
    Array.iteri
      (fun i p ->
        match if i < Array.length feedbacks then feedbacks.(i) else None with
        | Some fb when fb.hits_nested || fb.distance_decreased ->
          bits.(p.probe_pos) <- bits.(p.probe_pos) lor kind_bit p.probe_kind
        | _ -> ())
      pl.pl_probes;
    (* Propagate each probed verdict across the positions its stride
       window covers. *)
    for p = 0 to pl.pl_len - 1 do
      if p mod pl.pl_stride <> 0 then begin
        let anchor = p - (p mod pl.pl_stride) in
        bits.(p) <- bits.(anchor)
      end
    done;
    { bits; stride = pl.pl_stride }
  end

let compute rng ~stride ~max_probes ~probe stream =
  let pl = plan rng ~stride ~max_probes stream in
  finish pl (Array.map (fun p -> Some (probe p.probe_stream)) pl.pl_probes)

let allows t kind ~pos =
  if pos < 0 then false
  else if pos >= Array.length t.bits then true
  else t.bits.(pos) land kind_bit kind <> 0

let allow_all len = { bits = Array.make (Stdlib.max len 1) all_bits; stride = 1 }

(* ---------------- JSON codec (campaign checkpoints) ---------------- *)

module J = Telemetry.Json

(* Each position holds a 4-bit kind set, so one hex digit per position
   is the natural wire form. *)
let to_json t =
  let buf = Buffer.create (Array.length t.bits) in
  Array.iter (fun b -> Buffer.add_string buf (Printf.sprintf "%x" (b land all_bits))) t.bits;
  J.Obj [ ("stride", J.Int t.stride); ("bits", J.String (Buffer.contents buf)) ]

let of_json j =
  match
    ( Option.bind (J.member "stride" j) J.to_int,
      Option.bind (J.member "bits" j) J.string_value )
  with
  | Some stride, Some s when stride >= 1 && String.length s >= 1 -> begin
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | _ -> -1
    in
    let bits = Array.make (String.length s) 0 in
    let ok = ref true in
    String.iteri
      (fun i c ->
        let d = digit c in
        if d < 0 then ok := false else bits.(i) <- d)
      s;
    if !ok then Ok { bits; stride }
    else Error "mask: bits must be lowercase hex digits"
  end
  | _ -> Error "mask: needs stride >= 1 and a non-empty bits string"

let admitted_fraction t =
  let total = 4 * Array.length t.bits in
  let set =
    Array.fold_left
      (fun acc b ->
        acc
        + (b land 1)
        + ((b lsr 1) land 1)
        + ((b lsr 2) land 1)
        + ((b lsr 3) land 1))
      0 t.bits
  in
  if total = 0 then 1.0 else float_of_int set /. float_of_int total
