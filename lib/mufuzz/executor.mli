(** Seed execution harness: runs a full transaction sequence on a fresh
    world state (the paper's per-round re-execution model, §VI) and
    returns the per-transaction traces the feedback loops consume.

    With a {!State_cache.t} supplied, execution resumes from the deepest
    cached intermediate state whose transaction prefix matches — the
    §VI future-work optimisation. Results are bit-identical with or
    without the cache. *)

val deployer : Evm.State.address
val sender_pool : int -> Evm.State.address list
(** Deterministic, well-funded externally-owned accounts. *)

val contract_address : Evm.State.address

type tx_result = Executor_types.tx_result = {
  tx_index : int;
  fn_name : string;
  success : bool;
  trace : Evm.Trace.t;
}

type run = {
  tx_results : tx_result list;
  final_state : Evm.State.t;
  received_value : bool;
      (** some successful non-constructor transaction carried value *)
  executed_steps : int;
      (** EVM opcodes this call actually dispatched; transactions served
          from a cached prefix are excluded (mirrors [mufuzz_txs_total]) *)
  logical_steps : int;
      (** EVM opcodes across the whole sequence, cached prefixes
          included — a pure function of the seed, independent of cache
          warmth, so campaign step totals survive checkpoint/resume
          unchanged *)
}

type ctx
(** A batch execution context: sender pool, post-deploy world state,
    interpreter config and telemetry handles, all resolved once and
    reused across every seed pushed through it. Single-domain by
    design — the parallel campaign builds one per worker, with the
    pool's batch barrier as the hand-off edge. *)

val make_ctx :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?cache:State_cache.t ->
  ?metrics:Telemetry.Metrics.t ->
  unit ->
  ctx
(** Resolves metric handles (one registry-mutex round trip instead of
    one per execution), memoizes the post-deploy state, pre-faults the
    interpreter's frame pools ({!Evm.Interp.preheat}). A cache, when
    given, must be dedicated to this (contract, gas, n_senders,
    attacker) configuration — and, like the ctx, to one domain at a
    time. *)

val run_in_ctx : ctx -> Seed.t -> run
(** Execute one seed: resume from the deepest cached prefix, then run
    the remaining transactions in order with the block advancing
    between them. Constructor transactions are always issued by
    {!deployer}.
    Telemetry accumulates {e locally} in the ctx; nothing reaches the
    shared registry until {!flush}. *)

val flush : ctx -> unit
(** Push locally-accumulated telemetry ([mufuzz_txs_total],
    [mufuzz_evm_steps_total], [mufuzz_cache_prefix_hits_total], the
    [mufuzz_tx_gas_used] histogram, and the cache's hit/miss/eviction
    counters) into the shared registry — one atomic op per metric.
    Call at batch boundaries; idempotent between executions. *)

val run_batch : ctx -> Seed.t list -> run list
(** One dispatch pass over a whole seed population: runs each seed in
    list order through the shared ctx and flushes telemetry once.
    Result [i] is exactly [run_in_ctx ctx (List.nth seeds i)] — the
    batch is an amortisation, not a semantic change (tests assert the
    differential). *)

val run_seed :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?cache:State_cache.t ->
  ?metrics:Telemetry.Metrics.t ->
  Seed.t ->
  run
(** [make_ctx] + [run_in_ctx] + [flush] for a single seed — the
    convenience path replay-style consumers (triage, minimiser,
    regression replay) use. Campaign loops should hold a ctx and call
    {!run_batch} instead.

    The post-deploy world state (deployed code plus funded account
    pool) is memoized per (contract, n_senders) in domain-local
    storage, so repeated executions skip the constructor re-run; the
    returned runs are bit-identical with or without the memo. *)

val inspect : static:Oracles.Oracle.static_info -> run -> Oracles.Oracle.finding list
(** Run the nine oracles over a completed run — the campaign's and the
    triage layer's single entry into {!Oracles.Oracle.inspect_campaign}. *)

val findings :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?cache:State_cache.t ->
  Seed.t ->
  Oracles.Oracle.finding list
(** [run_seed] followed by {!inspect} with the contract's own static
    info — what replay-style consumers (minimiser, shrinker, repro)
    call. *)
