(** Seed execution harness: runs a full transaction sequence on a fresh
    world state (the paper's per-round re-execution model, §VI) and
    returns the per-transaction traces the feedback loops consume.

    With a {!State_cache.t} supplied, execution resumes from the deepest
    cached intermediate state whose transaction prefix matches — the
    §VI future-work optimisation. Results are bit-identical with or
    without the cache. *)

val deployer : Evm.State.address
val sender_pool : int -> Evm.State.address list
(** Deterministic, well-funded externally-owned accounts. *)

val contract_address : Evm.State.address

type tx_result = Executor_types.tx_result = {
  tx_index : int;
  fn_name : string;
  success : bool;
  trace : Evm.Trace.t;
}

type run = {
  tx_results : tx_result list;
  final_state : Evm.State.t;
  received_value : bool;
      (** some successful non-constructor transaction carried value *)
  executed_steps : int;
      (** EVM opcodes this call actually dispatched; transactions served
          from a cached prefix are excluded (mirrors [mufuzz_txs_total]) *)
  logical_steps : int;
      (** EVM opcodes across the whole sequence, cached prefixes
          included — a pure function of the seed, independent of cache
          warmth, so campaign step totals survive checkpoint/resume
          unchanged *)
}

val run_seed :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?cache:State_cache.t ->
  ?metrics:Telemetry.Metrics.t ->
  Seed.t ->
  run
(** Deploys the contract, funds the sender pool, then executes the
    seed's transactions in order, advancing the block between them.
    Constructor transactions are always issued by {!deployer}. A cache,
    when given, must be dedicated to this (contract, gas, n_senders,
    attacker) configuration. With [metrics], records
    [mufuzz_txs_total], [mufuzz_evm_steps_total],
    [mufuzz_cache_prefix_hits_total] and the [mufuzz_tx_gas_used]
    histogram — all lock-free, safe from worker domains.

    The post-deploy world state (deployed code plus funded account
    pool) is memoized per (contract, n_senders) in domain-local
    storage, so repeated executions skip the constructor re-run; the
    returned runs are bit-identical with or without the memo. *)

val inspect : static:Oracles.Oracle.static_info -> run -> Oracles.Oracle.finding list
(** Run the nine oracles over a completed run — the campaign's and the
    triage layer's single entry into {!Oracles.Oracle.inspect_campaign}. *)

val findings :
  contract:Minisol.Contract.t ->
  gas:int ->
  n_senders:int ->
  attacker:bool ->
  ?cache:State_cache.t ->
  Seed.t ->
  Oracles.Oracle.finding list
(** [run_seed] followed by {!inspect} with the contract's own static
    info — what replay-style consumers (minimiser, shrinker, repro)
    call. *)
