type branch = int * bool

type t = {
  hits : (branch, int) Hashtbl.t;
  (* best distance toward an uncovered side, keyed by that side *)
  dists : (branch, float) Hashtbl.t;
}

let create () = { hits = Hashtbl.create 256; dists = Hashtbl.create 256 }

let is_covered t br = Hashtbl.mem t.hits br

let record t (trace : Evm.Trace.t) =
  let fresh = ref false in
  List.iter
    (fun ev ->
      match ev with
      | Evm.Trace.Branch { pc; taken; dist_to_flip; _ } ->
        let br = (pc, taken) in
        (match Hashtbl.find_opt t.hits br with
        | Some n -> Hashtbl.replace t.hits br (n + 1)
        | None ->
          Hashtbl.replace t.hits br 1;
          fresh := true;
          Hashtbl.remove t.dists br);
        let flip = (pc, not taken) in
        if not (Hashtbl.mem t.hits flip) then begin
          match Hashtbl.find_opt t.dists flip with
          | Some d when d <= dist_to_flip -> ()
          | _ -> Hashtbl.replace t.dists flip dist_to_flip
        end
      | _ -> ())
    trace.events;
  !fresh

let copy t = { hits = Hashtbl.copy t.hits; dists = Hashtbl.copy t.dists }

(* Merge [src] into [dst]. Hit counts take the max (counts are never read
   as semantics, and max — unlike sum — makes the merge idempotent);
   distances take the min and are dropped for sides that became covered,
   preserving the invariant that [dists] only tracks uncovered sides.
   Commutative and idempotent over the observable state (covered set +
   best distances), so domain-local maps can be folded into the global
   map in any batch order. *)
let merge ~into:dst src =
  Hashtbl.iter
    (fun br n ->
      match Hashtbl.find_opt dst.hits br with
      | Some m -> if n > m then Hashtbl.replace dst.hits br n
      | None ->
        Hashtbl.replace dst.hits br n;
        Hashtbl.remove dst.dists br)
    src.hits;
  Hashtbl.iter
    (fun br d ->
      if not (Hashtbl.mem dst.hits br) then
        match Hashtbl.find_opt dst.dists br with
        | Some d' when d' <= d -> ()
        | _ -> Hashtbl.replace dst.dists br d)
    src.dists

let covered_count t = Hashtbl.length t.hits

let covered t = Hashtbl.fold (fun br _ acc -> br :: acc) t.hits []

let uncovered_frontier t =
  Hashtbl.fold
    (fun (pc, taken) _ acc ->
      let flip = (pc, not taken) in
      if Hashtbl.mem t.hits flip then acc else flip :: acc)
    t.hits []
  |> List.sort_uniq compare

let best_distance t br = Hashtbl.find_opt t.dists br

let trace_min_distance (trace : Evm.Trace.t) (pc, want_side) =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Evm.Trace.Branch { pc = p; taken; dist_to_flip; _ }
        when p = pc && taken = not want_side -> begin
        match acc with
        | Some d when d <= dist_to_flip -> acc
        | _ -> Some dist_to_flip
      end
      | _ -> acc)
    None trace.events

let total_sides_known t =
  covered_count t + List.length (uncovered_frontier t)

(* ---------------- JSON codec (campaign checkpoints) ---------------- *)

module J = Telemetry.Json

(* Iteration order of the tables is never observed (every reader sorts
   or tests membership), so the codec is free to emit a canonical sorted
   form — which also makes [to_json] byte-stable across save/load. *)
let to_json t =
  let branch_fields (pc, taken) = [ ("pc", J.Int pc); ("taken", J.Bool taken) ] in
  let hits =
    Hashtbl.fold (fun br n acc -> (br, n) :: acc) t.hits []
    |> List.sort compare
    |> List.map (fun (br, n) -> J.Obj (branch_fields br @ [ ("n", J.Int n) ]))
  in
  let dists =
    Hashtbl.fold (fun br d acc -> (br, d) :: acc) t.dists []
    |> List.sort compare
    |> List.map (fun (br, d) -> J.Obj (branch_fields br @ [ ("d", J.Float d) ]))
  in
  J.Obj [ ("hits", J.List hits); ("dists", J.List dists) ]

let of_json j =
  let ( let* ) = Result.bind in
  let branch_of j =
    match
      ( Option.bind (J.member "pc" j) J.to_int,
        Option.bind (J.member "taken" j) J.to_bool )
    with
    | Some pc, Some taken -> Ok (pc, taken)
    | _ -> Error "coverage: branch needs pc/taken"
  in
  let* hits =
    match Option.bind (J.member "hits" j) J.to_list with
    | None -> Error "coverage: missing hits list"
    | Some l -> Ok l
  in
  let* dists =
    match Option.bind (J.member "dists" j) J.to_list with
    | None -> Error "coverage: missing dists list"
    | Some l -> Ok l
  in
  let t = create () in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        let* br = branch_of entry in
        match Option.bind (J.member "n" entry) J.to_int with
        | Some n when n >= 1 ->
          Hashtbl.replace t.hits br n;
          Ok ()
        | _ -> Error "coverage: hit entry needs n >= 1")
      (Ok ()) hits
  in
  let* () =
    List.fold_left
      (fun acc entry ->
        let* () = acc in
        let* br = branch_of entry in
        match Option.bind (J.member "d" entry) J.to_float with
        | Some d ->
          if Hashtbl.mem t.hits br then
            Error "coverage: dist entry for a covered side"
          else begin
            Hashtbl.replace t.dists br d;
            Ok ()
          end
        | None -> Error "coverage: dist entry needs d")
      (Ok ()) dists
  in
  Ok t
