(** Prefix state caching — the optimisation the paper's §VI names as
    future work: instead of re-executing every transaction of a sequence
    from a fresh state, the executor resumes from the deepest cached
    intermediate state whose transaction prefix matches.

    Keys are chained Keccak digests of the transaction descriptors
    (function selector, sender index, input stream), so a seed whose
    mutation touched only transaction [k] replays transactions
    [0..k-1] for free. Caching is semantically transparent: campaigns
    produce bit-identical results with it on or off (tests assert this);
    only throughput changes. *)

type t

type snapshot = {
  state : Evm.State.t;
  block : Evm.Interp.block_env;
  tx_results : Executor_types.tx_result list;  (** in execution order *)
  received_value : bool;
}

val create : ?capacity:int -> ?metrics:Telemetry.Metrics.t -> unit -> t
(** [capacity] bounds the number of snapshots (default 4096). When the
    cache is full a second-chance clock evicts one cold entry per
    insertion — recently hit snapshots survive, so a full cache keeps
    serving the prefixes the mutation loop is actively exercising. With
    [metrics], maintains [mufuzz_cache_hits_total],
    [mufuzz_cache_misses_total] and [mufuzz_cache_evictions_total]. *)

val digest_tx : string -> Seed.tx -> string
(** [digest_tx prev tx] chains the prefix digest with this transaction's
    descriptor. The empty string is the root digest. *)

val find : t -> string -> snapshot option

val store : t -> string -> snapshot -> unit

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries removed by the clock hand since [create]. *)
