(** Prefix state caching — the optimisation the paper's §VI names as
    future work: instead of re-executing every transaction of a sequence
    from a fresh state, the executor resumes from the deepest cached
    intermediate state whose transaction prefix matches.

    Keys are chained Keccak digests of the transaction descriptors
    (function selector, sender index, input stream), so a seed whose
    mutation touched only transaction [k] replays transactions
    [0..k-1] for free. Caching is semantically transparent: campaigns
    produce bit-identical results with it on or off (tests assert this);
    only throughput changes. *)

type t

type snapshot = {
  state : Evm.State.t;
  block : Evm.Interp.block_env;
  tx_results : Executor_types.tx_result list;  (** in execution order *)
  received_value : bool;
}

val create : ?capacity:int -> ?metrics:Telemetry.Metrics.t -> unit -> t
(** [capacity] bounds the number of snapshots (default 4096). When the
    cache is full a second-chance clock evicts one cold entry per
    insertion — recently hit snapshots survive, so a full cache keeps
    serving the prefixes the mutation loop is actively exercising. With
    [metrics], maintains [mufuzz_cache_hits_total],
    [mufuzz_cache_misses_total] and [mufuzz_cache_evictions_total] —
    updated only by {!flush_metrics}, so the lookup path itself never
    touches a shared cache line. *)

val flush_metrics : t -> unit
(** Push hit/miss/eviction counts accumulated since the last flush into
    the registry counters given at {!create}. Without metrics, a no-op.
    Call from the owning domain at a batch boundary. *)

val digest_tx : string -> Seed.tx -> string
(** [digest_tx prev tx] chains the prefix digest with this transaction's
    descriptor. The empty string is the root digest. *)

val find : t -> string -> snapshot option

val store : t -> string -> snapshot -> unit

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Entries removed by the clock hand since [create]. *)

(** {2 Per-domain sharding}

    The parallel campaign gives every worker domain a private shard, so
    the hot prefix-lookup path is entirely domain-local: no mutex, no
    shared counters, no cross-domain cache-line traffic. The barrier of
    {!Pool.run_batch} is the hand-off edge that makes a shard safe to
    touch from the coordinator between rounds (for counter totals). *)

type sharded

val create_sharded :
  ?capacity:int -> ?metrics:Telemetry.Metrics.t -> shards:int -> unit -> sharded
(** [max 1 shards] independent caches of [capacity] entries each,
    reporting into the same registry counters when [metrics] is given. *)

val shard : sharded -> int -> t
(** [shard s w] is worker [w]'s private cache (indices wrap). *)

val shard_count : sharded -> int

val total_hits : sharded -> int
val total_misses : sharded -> int
val total_evictions : sharded -> int
(** Sums over every shard — the merged campaign-wide counters. Only
    call when no worker is mid-batch. *)

val flush_sharded_metrics : sharded -> unit
(** {!flush_metrics} on every shard. *)
