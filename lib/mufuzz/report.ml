type checkpoint = { execs : int; covered : int }

type stop_reason =
  | Budget_exhausted
  | Time_exhausted
  | Queue_exhausted
  | Stalled
  | Preempted

let stop_reason_to_string = function
  | Budget_exhausted -> "budget-exhausted"
  | Time_exhausted -> "time-exhausted"
  | Queue_exhausted -> "queue-exhausted"
  | Stalled -> "stalled"
  | Preempted -> "preempted"

let stop_reason_of_string = function
  | "budget-exhausted" -> Ok Budget_exhausted
  | "time-exhausted" -> Ok Time_exhausted
  | "queue-exhausted" -> Ok Queue_exhausted
  | "stalled" -> Ok Stalled
  | "preempted" -> Ok Preempted
  | s -> Error (Printf.sprintf "unknown stop reason %S" s)

type domain_stat = {
  domain : int;
  d_execs : int;
  busy_seconds : float;
  stall_seconds : float;
}

type parallel_stats = {
  jobs : int;
  rounds : int;
  round_batch : int;
  round_batch_auto : bool;
  round_batch_final : int;
  merge_seconds : float;
  merge_wait_seconds : float;
  worker_idle_seconds : float;
  steals : int;
  domains : domain_stat list;
}

type t = {
  contract_name : string;
  executions : int;
  steps : int;
  mask_probes : int;
  predict_proposals : int;
  covered_branches : int;
  covered : (int * bool) list;
  total_branch_sides : int;
  findings : Oracles.Oracle.finding list;
  occurrences : (Oracles.Oracle.key * int) list;
  witnesses : (Oracles.Oracle.finding * string) list;
  witness_seeds : (Oracles.Oracle.finding * Seed.t) list;
  over_time : checkpoint list;
  seeds_in_queue : int;
  corpus : Seed.t list;
  corpus_skipped : (int * string) list;
  wall_seconds : float;
  stop_reason : stop_reason;
  parallel : parallel_stats option;
}

let execs_per_sec (d : domain_stat) =
  if d.busy_seconds > 0.0 then float_of_int d.d_execs /. d.busy_seconds else 0.0

let coverage_pct t =
  if t.total_branch_sides = 0 then 0.0
  else 100.0 *. float_of_int t.covered_branches /. float_of_int t.total_branch_sides

let has_class t cls =
  List.exists (fun (f : Oracles.Oracle.finding) -> f.cls = cls) t.findings

let findings_by_class t =
  List.filter_map
    (fun cls ->
      let n =
        List.length
          (List.filter (fun (f : Oracles.Oracle.finding) -> f.cls = cls) t.findings)
      in
      if n > 0 then Some (cls, n) else None)
    Oracles.Oracle.all_classes

let pp_summary fmt t =
  Format.fprintf fmt "%s: %d execs, coverage %.1f%% (%d/%d sides), %d findings@."
    t.contract_name t.executions (coverage_pct t) t.covered_branches
    t.total_branch_sides (List.length t.findings);
  List.iter
    (fun (cls, n) ->
      Format.fprintf fmt "  %s: %d@." (Oracles.Oracle.class_to_string cls) n)
    (findings_by_class t)

let to_text t =
  let buf = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "MuFuzz report for %s\n" t.contract_name;
  pf "====================%s\n\n" (String.make (String.length t.contract_name) '=');
  pf "executions      : %d\n" t.executions;
  pf "evm steps       : %d\n" t.steps;
  pf "mask probes     : %d\n" t.mask_probes;
  pf "predictions     : %d proposals\n" t.predict_proposals;
  pf "wall time       : %.2fs\n" t.wall_seconds;
  pf "stopped because : %s\n" (stop_reason_to_string t.stop_reason);
  pf "branch coverage : %.1f%% (%d of %d sides)\n" (coverage_pct t)
    t.covered_branches t.total_branch_sides;
  pf "seeds in queue  : %d\n" t.seeds_in_queue;
  pf "findings        : %d\n\n" (List.length t.findings);
  List.iter
    (fun (cls, n) ->
      pf "  %s  %d  (%s)\n"
        (Oracles.Oracle.class_to_string cls)
        n
        (Oracles.Oracle.class_description cls))
    (findings_by_class t);
  if t.occurrences <> [] then begin
    pf "\nunique findings (class@pc/call-path, occurrence count)\n";
    pf "------------------------------------------------------\n";
    List.iter
      (fun (k, n) ->
        pf "  %-28s %6d\n" (Oracles.Oracle.key_to_string k) n)
      t.occurrences
  end;
  if t.corpus_skipped <> [] then begin
    pf "\ncorpus blocks skipped as corrupt\n";
    List.iter (fun (i, reason) -> pf "  block %d: %s\n" i reason) t.corpus_skipped
  end;
  if t.witnesses <> [] then begin
    pf "\nwitnesses\n---------\n";
    List.iter
      (fun ((f : Oracles.Oracle.finding), w) ->
        pf "\n[%s] pc=%d tx#%d: %s\n  sequence: %s\n"
          (Oracles.Oracle.class_to_string f.cls)
          f.pc f.tx_index f.detail w)
      t.witnesses
  end;
  (match t.parallel with
  | None -> ()
  | Some p ->
    let rb =
      if p.round_batch_auto then
        Printf.sprintf "%d->%d (auto)" p.round_batch p.round_batch_final
      else string_of_int p.round_batch
    in
    pf
      "\n\
       parallel execution (%d domains, %d rounds of %s seeds/domain, %.2fs \
       merging, %d steals)\n"
      p.jobs p.rounds rb p.merge_seconds p.steals;
    pf "  coordinator merge-wait %.2fs, worker idle %.2fs\n"
      p.merge_wait_seconds p.worker_idle_seconds;
    List.iter
      (fun d ->
        pf "  domain %d: %6d execs, %8.1f execs/sec, %.2fs merge stall\n"
          d.domain d.d_execs (execs_per_sec d) d.stall_seconds)
      p.domains);
  pf "\ncoverage growth (execs -> covered sides)\n";
  (* sample every [step]-th checkpoint but always print the final one;
     the length is hoisted so the last-index test is exact (and not
     recomputed per element) even when the list is empty or its length
     is a multiple of the step *)
  let n_checkpoints = List.length t.over_time in
  let step = Stdlib.max 1 (n_checkpoints / 20) in
  List.iteri
    (fun i (cp : checkpoint) ->
      if i mod step = 0 || i = n_checkpoints - 1 then
        pf "  %6d %4d\n" cp.execs cp.covered)
    t.over_time;
  Buffer.contents buf

(* ---------------- machine-readable report ---------------- *)

let to_json t =
  let module J = Telemetry.Json in
  let finding_json (f : Oracles.Oracle.finding) =
    J.Obj
      [
        ("class", J.String (Oracles.Oracle.class_to_string f.cls));
        ("pc", J.Int f.pc);
        ("tx_index", J.Int f.tx_index);
        ("detail", J.String f.detail);
      ]
  in
  let parallel_json (p : parallel_stats) =
    J.Obj
      [
        ("jobs", J.Int p.jobs);
        ("rounds", J.Int p.rounds);
        ("round_batch", J.Int p.round_batch);
        ("round_batch_auto", J.Bool p.round_batch_auto);
        ("round_batch_final", J.Int p.round_batch_final);
        ("merge_seconds", J.Float p.merge_seconds);
        ("merge_wait_seconds", J.Float p.merge_wait_seconds);
        ("worker_idle_seconds", J.Float p.worker_idle_seconds);
        ("steals", J.Int p.steals);
        ( "domains",
          J.List
            (List.map
               (fun d ->
                 J.Obj
                   [
                     ("domain", J.Int d.domain);
                     ("execs", J.Int d.d_execs);
                     ("busy_seconds", J.Float d.busy_seconds);
                     ("stall_seconds", J.Float d.stall_seconds);
                     ("execs_per_sec", J.Float (execs_per_sec d));
                   ])
               p.domains) );
      ]
  in
  J.Obj
    [
      ("contract", J.String t.contract_name);
      ("executions", J.Int t.executions);
      ("steps", J.Int t.steps);
      ("mask_probes", J.Int t.mask_probes);
      ("predict_proposals", J.Int t.predict_proposals);
      ("stop_reason", J.String (stop_reason_to_string t.stop_reason));
      ("wall_seconds", J.Float t.wall_seconds);
      ( "execs_per_sec",
        J.Float
          (if t.wall_seconds > 0.0 then
             float_of_int t.executions /. t.wall_seconds
           else 0.0) );
      ( "steps_per_sec",
        J.Float
          (if t.wall_seconds > 0.0 then float_of_int t.steps /. t.wall_seconds
           else 0.0) );
      ("covered_branches", J.Int t.covered_branches);
      ("total_branch_sides", J.Int t.total_branch_sides);
      ("coverage_pct", J.Float (coverage_pct t));
      ( "covered",
        J.List
          (List.map
             (fun (pc, taken) ->
               J.Obj [ ("pc", J.Int pc); ("taken", J.Bool taken) ])
             t.covered) );
      ("findings", J.List (List.map finding_json t.findings));
      ( "unique_findings",
        J.List
          (List.map
             (fun ((k : Oracles.Oracle.key), count) ->
               J.Obj
                 [
                   ("class", J.String (Oracles.Oracle.class_to_string k.k_cls));
                   ("pc", J.Int k.k_pc);
                   ("path_hash", J.String k.k_path);
                   ("count", J.Int count);
                 ])
             t.occurrences) );
      ( "witnesses",
        J.List
          (List.map
             (fun ((f : Oracles.Oracle.finding), w) ->
               J.Obj
                 [
                   ("class", J.String (Oracles.Oracle.class_to_string f.cls));
                   ("pc", J.Int f.pc);
                   ("sequence", J.String w);
                 ])
             t.witnesses) );
      ( "over_time",
        J.List
          (List.map
             (fun (cp : checkpoint) ->
               J.Obj [ ("execs", J.Int cp.execs); ("covered", J.Int cp.covered) ])
             t.over_time) );
      ("seeds_in_queue", J.Int t.seeds_in_queue);
      ( "skipped",
        J.List
          (List.map
             (fun (i, reason) ->
               J.Obj [ ("block", J.Int i); ("reason", J.String reason) ])
             t.corpus_skipped) );
      ( "parallel",
        match t.parallel with None -> J.Null | Some p -> parallel_json p );
    ]

let to_json_string t = Telemetry.Json.to_string (to_json t)
