module U = Word.U256

let deployer = U.of_hex_string "0xdeb107e4"

let attacker = Evm.Interp.attacker_address

let contract_address = U.of_hex_string "0xc047ac7"

let sender_base = U.of_hex_string "0x5e4de4"

let sender_pool n =
  attacker :: List.init (Stdlib.max 0 (n - 1)) (fun i -> U.add sender_base (U.of_int i))

let caller_pool n = sender_pool n @ [ deployer ]

let address_dictionary n =
  sender_pool n @ [ deployer; contract_address; U.zero ]
