(* Work-stealing pool of stdlib Domains.

   Each worker owns a deque; [run_batch] deals tasks round-robin across
   the deques and workers pop from their own front, stealing from the
   back of a sibling when theirs runs dry. All queues share one mutex —
   batches are coarse (a handful of seed-energy tasks per round), so a
   single lock is never contended long enough to matter and keeps the
   invariants trivial. Workers park on a condition variable between
   rounds; the time spent parked while a batch is still in flight is the
   "merge stall" surfaced in reports. *)

type stats = {
  tasks_run : int array;
  busy_seconds : float array;
  stall_seconds : float array;
  merge_wait_seconds : float;
  steals : int;
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  batch_done : Condition.t;
  deques : (int -> unit) Queue.t array;  (* per-worker; task gets worker id *)
  mutable pending : int;  (* submitted tasks not yet completed *)
  mutable in_batch : bool;  (* a run_batch is in flight: parking = stall *)
  mutable stop : bool;
  tasks_run : int array;
  busy_seconds : float array;
  stall_seconds : float array;
  mutable steals : int;
  mutable merge_wait : float;  (* coordinator seconds blocked at barriers *)
  mutable domains : unit Domain.t array;
  bus : Telemetry.Bus.t;
  m_tasks : Telemetry.Metrics.counter option;
  m_steals : Telemetry.Metrics.counter option;
  m_merge_wait : Telemetry.Metrics.gauge option;
  m_idle : Telemetry.Metrics.gauge option;
}

let size t = t.size

(* Pop from own front, else steal from the back of the first non-empty
   sibling (scanning forward from the thief's index so victims rotate).
   Caller holds the mutex. *)
let take_task t me =
  if not (Queue.is_empty t.deques.(me)) then Some (Queue.pop t.deques.(me))
  else begin
    let found = ref None in
    for k = 1 to t.size - 1 do
      let victim = (me + k) mod t.size in
      if !found = None && not (Queue.is_empty t.deques.(victim)) then begin
        (* steal the most recently dealt task: drain to reach the back *)
        let q = t.deques.(victim) in
        let n = Queue.length q in
        let stolen = ref (Queue.pop q) in
        for _ = 2 to n do
          Queue.push !stolen q;
          stolen := Queue.pop q
        done;
        t.steals <- t.steals + 1;
        (match t.m_steals with Some c -> Telemetry.Metrics.incr c | None -> ());
        Telemetry.Bus.emit t.bus
          (Telemetry.Event.Pool_steal { thief = me; victim });
        found := Some !stolen
      end
    done;
    !found
  end

let worker t me =
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    let rec next () =
      match take_task t me with
      | Some task -> Some task
      | None ->
        if t.stop then None
        else begin
          let t0 = Unix.gettimeofday () in
          Condition.wait t.work_available t.mutex;
          if t.in_batch then
            t.stall_seconds.(me) <-
              t.stall_seconds.(me) +. (Unix.gettimeofday () -. t0);
          next ()
        end
    in
    (match next () with
    | None ->
      running := false;
      Mutex.unlock t.mutex
    | Some task ->
      Mutex.unlock t.mutex;
      let t0 = Unix.gettimeofday () in
      (try task me with _ -> ());
      t.busy_seconds.(me) <- t.busy_seconds.(me) +. (Unix.gettimeofday () -. t0);
      t.tasks_run.(me) <- t.tasks_run.(me) + 1;
      (match t.m_tasks with Some c -> Telemetry.Metrics.incr c | None -> ());
      Mutex.lock t.mutex;
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.mutex)
  done

let create ?(bus = Telemetry.Bus.null) ?metrics ~jobs () =
  let jobs = Stdlib.max 1 jobs in
  let handle name help =
    Option.map (fun m -> Telemetry.Metrics.counter m name ~help) metrics
  in
  let ghandle name help =
    Option.map (fun m -> Telemetry.Metrics.gauge m name ~help) metrics
  in
  let t =
    {
      size = jobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      batch_done = Condition.create ();
      deques = Array.init jobs (fun _ -> Queue.create ());
      pending = 0;
      in_batch = false;
      stop = false;
      tasks_run = Array.make jobs 0;
      busy_seconds = Array.make jobs 0.0;
      stall_seconds = Array.make jobs 0.0;
      steals = 0;
      merge_wait = 0.0;
      domains = [||];
      bus;
      m_tasks =
        handle "mufuzz_pool_tasks_total" "tasks completed by the domain pool";
      m_steals =
        handle "mufuzz_pool_steals_total"
          "tasks stolen from a sibling worker's deque";
      m_merge_wait =
        ghandle "mufuzz_pool_merge_wait_seconds"
          "cumulative coordinator seconds blocked at batch barriers";
      m_idle =
        ghandle "mufuzz_pool_worker_idle_seconds"
          "cumulative worker seconds parked while a batch was in flight";
    }
  in
  t.domains <- Array.init jobs (fun i -> Domain.spawn (fun () -> worker t i));
  t

(* Time a coordinator wait loop and fold it into the merge-wait total;
   caller holds the mutex across the whole call (Condition.wait drops
   it while parked, as usual). *)
let timed_wait t cond =
  let t0 = Unix.gettimeofday () in
  while cond () do
    Condition.wait t.batch_done t.mutex
  done;
  t.merge_wait <- t.merge_wait +. (Unix.gettimeofday () -. t0)

(* Publish the cumulative wait gauges; caller holds the mutex. *)
let publish_wait_metrics t =
  (match t.m_merge_wait with
  | Some g -> Telemetry.Metrics.set g t.merge_wait
  | None -> ());
  match t.m_idle with
  | Some g -> Telemetry.Metrics.set g (Array.fold_left ( +. ) 0.0 t.stall_seconds)
  | None -> ()

exception Task_error of exn

let run_batch t tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    let failure = ref None in
    Mutex.lock t.mutex;
    if t.pending <> 0 || t.in_batch then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run_batch: pool already running a batch"
    end;
    Array.iteri
      (fun i task ->
        let wrapped worker_id =
          match task worker_id with
          | v -> results.(i) <- Some v
          | exception e -> if !failure = None then failure := Some e
        in
        Queue.push wrapped t.deques.(i mod t.size))
      tasks;
    t.pending <- n;
    t.in_batch <- true;
    Condition.broadcast t.work_available;
    timed_wait t (fun () -> t.pending > 0);
    t.in_batch <- false;
    publish_wait_metrics t;
    Mutex.unlock t.mutex;
    match !failure with
    | Some e -> raise (Task_error e)
    | None ->
      Array.map
        (function Some v -> v | None -> invalid_arg "Pool.run_batch: lost result")
        results
  end

(* Incremental variant: merge results on the coordinator in submission
   order *while the rest of the batch is still running*, instead of
   parking until the whole batch drains. Workers flag each task's
   completion under the pool mutex, which doubles as the
   happens-before edge making the result write visible; the coordinator
   merges index 0, then 1, ... as each lands, overlapping merge work
   with sibling tasks. Submission order is preserved so merging stays
   deterministic regardless of which worker finished first. *)
let run_batch_iter t tasks ~merge =
  let n = Array.length tasks in
  if n = 0 then ()
  else begin
    let results = Array.make n None in
    let completed = Array.make n false in
    let failure = ref None in
    Mutex.lock t.mutex;
    if t.pending <> 0 || t.in_batch then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run_batch_iter: pool already running a batch"
    end;
    Array.iteri
      (fun i task ->
        let wrapped worker_id =
          (match task worker_id with
          | v -> results.(i) <- Some v
          | exception e -> if !failure = None then failure := Some e);
          Mutex.lock t.mutex;
          completed.(i) <- true;
          Condition.broadcast t.batch_done;
          Mutex.unlock t.mutex
        in
        Queue.push wrapped t.deques.(i mod t.size))
      tasks;
    t.pending <- n;
    t.in_batch <- true;
    Condition.broadcast t.work_available;
    let next = ref 0 in
    while !next < n do
      timed_wait t (fun () -> not completed.(!next));
      let i = !next in
      incr next;
      Mutex.unlock t.mutex;
      (match results.(i) with
      | Some v ->
        if !failure = None then begin
          try merge i v with e -> failure := Some e
        end
      | None -> ());
      Mutex.lock t.mutex
    done;
    (* the last-merged task's worker may not have decremented [pending]
       yet; hold the batch open until it has so overlap checks stay
       sound for the next round *)
    timed_wait t (fun () -> t.pending > 0);
    t.in_batch <- false;
    publish_wait_metrics t;
    Mutex.unlock t.mutex;
    match !failure with Some e -> raise (Task_error e) | None -> ()
  end

let map t f items =
  let tasks = Array.of_list (List.map (fun x -> fun _worker -> f x) items) in
  Array.to_list (run_batch t tasks)

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      tasks_run = Array.copy t.tasks_run;
      busy_seconds = Array.copy t.busy_seconds;
      stall_seconds = Array.copy t.stall_seconds;
      merge_wait_seconds = t.merge_wait;
      steals = t.steals;
    }
  in
  Mutex.unlock t.mutex;
  s

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.domains

let with_pool ?bus ?metrics ~jobs f =
  let t = create ?bus ?metrics ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
