(** Algorithm 2: mutation-mask computation (§IV-B).

    For a chosen seed (one transaction's byte stream) and a target branch,
    every stream position is probed with each of the four operator classes
    {O, I, R, D}. A position admits an operator iff the probed mutant
    still hits a nested branch or brings the branch distance down — those
    positions are safe to mutate; the rest are the input's critical bytes
    and the mask forbids touching them. *)

type t
(** One bitset of admitted operator kinds per stream position. *)

type feedback = {
  hits_nested : bool;  (** the mutant still reaches a nested branch *)
  distance_decreased : bool;
      (** the mutant got closer to the target uncovered branch *)
}

val compute :
  Util.Rng.t ->
  stride:int ->
  max_probes:int ->
  probe:(string -> feedback) ->
  string ->
  t
(** [compute rng ~stride ~max_probes ~probe stream] runs Algorithm 2,
    probing positions [0, stride, 2*stride, ...] (positions the stride
    skips inherit the verdict of the probed position covering them). The
    operator width [n] is drawn once per mask, as in the paper.

    Implemented as [plan] followed by [finish] with every probe executed
    — the staged form below is the same algorithm split so a campaign
    can execute the probe mutants in batches. *)

(** {2 Staged form}

    [plan] generates every probe mutant up front (drawing from the RNG
    in exactly the order {!compute} does — the width [n] once, then one
    draw sequence per mutant in (position asc, kind) order). The caller
    executes the mutants however it likes — sequentially, in
    [Executor.run_batch] waves, across a worker pool — and hands the
    feedback back to {!finish}, which folds it into the same mask the
    interleaved {!compute} would have produced. A [None] feedback marks
    a probe that was never executed (budget exhausted); it contributes
    no admitted bits, matching the sequential path's behaviour when the
    probe callback runs out of budget. *)

type probe = {
  probe_pos : int;  (** stream position this probe tests *)
  probe_kind : Mutation.kind;  (** operator class under test *)
  probe_stream : string;  (** the mutant byte stream to execute *)
}

type plan
(** The probe schedule for one mask: mutants in deterministic order. *)

val plan : Util.Rng.t -> stride:int -> max_probes:int -> string -> plan
(** Draw the probe schedule. Consumes the same RNG stream as
    {!compute} with the same arguments. *)

val probes : plan -> probe array
(** All probes in execution order. Do not mutate. *)

val waves : plan -> width:int -> probe array list
(** The probe sequence chunked into waves of at most [width] probes,
    aligned to stride-anchor boundaries: the probes for one position
    never straddle two waves. Concatenating the waves yields {!probes}
    in order. [width] is clamped to at least one whole position group. *)

val finish : plan -> feedback option array -> t
(** [finish plan feedbacks] builds the mask; [feedbacks.(i)] answers
    probe [i] of {!probes} ([None] = not executed, admits nothing).
    Missing trailing entries are treated as [None]. *)

val allows : t -> Mutation.kind -> pos:int -> bool
(** OKTOMUTATE. Positions beyond the computed range are allowed (streams
    can grow via insertions). *)

val allow_all : int -> t
(** The trivial mask (ablation: mask guidance disabled). *)

val admitted_fraction : t -> float
(** Fraction of (position, kind) pairs admitted — reporting/testing. *)

val to_json : t -> Telemetry.Json.t
(** Checkpoint codec: stride plus one hex digit (the 4-bit kind set) per
    stream position. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] yields a mask with
    identical {!allows} behaviour. *)
