(** Algorithm 2: mutation-mask computation (§IV-B).

    For a chosen seed (one transaction's byte stream) and a target branch,
    every stream position is probed with each of the four operator classes
    {O, I, R, D}. A position admits an operator iff the probed mutant
    still hits a nested branch or brings the branch distance down — those
    positions are safe to mutate; the rest are the input's critical bytes
    and the mask forbids touching them. *)

type t
(** One bitset of admitted operator kinds per stream position. *)

type feedback = {
  hits_nested : bool;  (** the mutant still reaches a nested branch *)
  distance_decreased : bool;
      (** the mutant got closer to the target uncovered branch *)
}

val compute :
  Util.Rng.t ->
  stride:int ->
  max_probes:int ->
  probe:(string -> feedback) ->
  string ->
  t
(** [compute rng ~stride ~max_probes ~probe stream] runs Algorithm 2,
    probing positions [0, stride, 2*stride, ...] (positions the stride
    skips inherit the verdict of the probed position covering them). The
    operator width [n] is drawn once per mask, as in the paper. *)

val allows : t -> Mutation.kind -> pos:int -> bool
(** OKTOMUTATE. Positions beyond the computed range are allowed (streams
    can grow via insertions). *)

val allow_all : int -> t
(** The trivial mask (ablation: mask guidance disabled). *)

val admitted_fraction : t -> float
(** Fraction of (position, kind) pairs admitted — reporting/testing. *)

val to_json : t -> Telemetry.Json.t
(** Checkpoint codec: stride plus one hex digit (the 4-bit kind set) per
    stream position. *)

val of_json : Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}: [of_json (to_json t)] yields a mask with
    identical {!allows} behaviour. *)
