(** Seeds: a transaction sequence plus the mutable byte stream of each
    transaction's inputs.

    Per §IV-B the fuzzer "internally represents each test input t as a
    byte stream". For a transaction calling [f(inputs...)] the stream is
    the concatenation of the raw ABI argument words followed by a 32-byte
    [msg.value] word, so the mask and the mutation operators uniformly
    cover both arguments and attached ether. *)

type tx = {
  fn : Abi.func;
  stream : string;  (** argument bytes ++ 32-byte value word *)
  sender : int;  (** index into the campaign's sender pool *)
}

type t = { txs : tx list }

val stream_length : Abi.func -> int
(** Canonical stream length for a function: [32 * arity + 32]. *)

val tx_value : tx -> Word.U256.t
(** The msg.value encoded in the stream's trailing word (zero-extended
    if the stream was shortened by deletions). *)

val tx_calldata : tx -> string
(** Full calldata for the EVM: selector + canonicalised arguments. *)

val make_tx : Abi.func -> sender:int -> args:string -> value:Word.U256.t -> tx

val random_tx :
  ?dict:Word.U256.t array -> Util.Rng.t -> n_senders:int -> Abi.func -> tx
(** Interesting-value-biased generation: argument words and values are
    drawn from a dictionary of boundary constants (0, 1, small ints,
    round ether amounts, 2^k ± 1, addresses of pool accounts) mixed with
    uniform bytes — the AFL-style initial corpus. *)

val of_sequence :
  ?dict:Word.U256.t array ->
  Util.Rng.t -> n_senders:int -> Abi.func list -> string list -> t
(** Build a seed for a named function sequence (names must resolve in
    the ABI list). *)

val with_tx : t -> int -> tx -> t
(** Replace the [i]-th transaction. *)

val call_path : t -> upto:int -> string list
(** Function names of transactions [0 .. upto] inclusive — the call
    path under which the triage layer hashes a finding raised at
    transaction [upto]. Empty for [upto < 0] (whole-contract
    findings). *)

val pp : Format.formatter -> t -> unit
val show : t -> string

val to_json : t -> Telemetry.Json.t
(** Checkpoint codec: a list of [{fn; sender; stream}] objects with the
    byte stream hex-encoded. Functions serialise by name and resolve
    against the contract ABI on load. *)

val of_json : abi:Abi.func list -> Telemetry.Json.t -> (t, string) result
(** Inverse of {!to_json}. [of_json ~abi (to_json t) = Ok t] whenever
    every transaction's function is present in [abi]. *)
