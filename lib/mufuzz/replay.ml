exception Corrupt of string

let tx_to_line (tx : Seed.tx) =
  Printf.sprintf "%s %d %s" tx.fn.Abi.name tx.sender (Util.Hex.encode tx.stream)

let seed_to_string (seed : Seed.t) =
  String.concat "\n" (List.map tx_to_line seed.txs) ^ "\n"

(* Shared by the line format here and the triage artifact codec: resolve
   a (function name, sender, hex stream) triple against an ABI. *)
let tx_of_parts ~abi ~name ~sender ~hex =
  match List.find_opt (fun (f : Abi.func) -> f.Abi.name = name) abi with
  | None -> raise (Corrupt (Printf.sprintf "unknown function %s" name))
  | Some fn ->
    if sender < 0 then raise (Corrupt (Printf.sprintf "bad sender %d" sender));
    let stream =
      try Util.Hex.decode hex with Invalid_argument m -> raise (Corrupt m)
    in
    { Seed.fn; sender; stream }

let rec tx_of_line ~abi line =
  match String.split_on_char ' ' (String.trim line) with
  | [ name; sender; hex ] -> begin
    let sender =
      match int_of_string_opt sender with
      | Some s when s >= 0 -> s
      | _ -> raise (Corrupt ("bad sender in: " ^ line))
    in
    try tx_of_parts ~abi ~name ~sender ~hex
    with Corrupt m -> raise (Corrupt (m ^ " in: " ^ line))
  end
  | [ name; sender ] -> tx_of_line ~abi (name ^ " " ^ sender ^ " ")
  | _ -> raise (Corrupt ("malformed line: " ^ line))

let seed_of_string ~abi s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  if lines = [] then raise (Corrupt "empty seed");
  { Seed.txs = List.map (tx_of_line ~abi) lines }

let save_corpus path seeds =
  let buf = Buffer.create 1024 in
  List.iter
    (fun seed ->
      Buffer.add_string buf (seed_to_string seed);
      Buffer.add_char buf '\n')
    seeds;
  (* temp + rename: a crash mid-save never tears an existing corpus *)
  Util.Fileio.write_atomic path (Buffer.contents buf)

let load_corpus ~abi path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let content = really_input_string ic n in
  close_in ic;
  (* seeds are separated by blank lines *)
  let blocks =
    String.split_on_char '\n' content
    |> List.fold_left
         (fun (done_, cur) line ->
           if String.trim line = "" then
             if cur = [] then (done_, []) else (List.rev cur :: done_, [])
           else (done_, line :: cur))
         ([], [])
    |> fun (done_, cur) ->
    List.rev (if cur = [] then done_ else List.rev cur :: done_)
  in
  (* one corrupt block loses that seed, never the corpus: collect the
     good seeds and report each skipped block as (index, reason) *)
  let seeds_rev, skipped_rev, _ =
    List.fold_left
      (fun (seeds, skipped, i) lines ->
        match seed_of_string ~abi (String.concat "\n" lines) with
        | seed -> (seed :: seeds, skipped, i + 1)
        | exception Corrupt reason -> (seeds, (i, reason) :: skipped, i + 1))
      ([], [], 0) blocks
  in
  (List.rev seeds_rev, List.rev skipped_rev)
