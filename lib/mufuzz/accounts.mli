(** The deterministic account universe of a campaign: a deployer, the
    simulated reentrancy attacker, a pool of funded senders and the
    contract under test. Centralised so that seed generation can bias
    address-typed arguments toward addresses that actually exist. *)

val deployer : Evm.State.address

val attacker : Evm.State.address
(** Same as {!Evm.Interp.attacker_address}. *)

val contract_address : Evm.State.address

val sender_pool : int -> Evm.State.address list
(** [n] senders; index 0 is the attacker. *)

val caller_pool : int -> Evm.State.address list
(** The callable universe: the sender pool plus the deployer as the
    final slot. Random seed generation only ever draws sender indices
    below [n], so the deployer slot is reached exclusively through
    deliberate choice — the input-prediction solver proposing a sender
    swap onto an owner-equality guard. *)

val address_dictionary : int -> Evm.State.address list
(** All addresses worth trying as an [address] argument, for a pool of
    the given size: senders, deployer, contract, zero. *)
