(** Campaign results. *)

type checkpoint = { execs : int; covered : int }

(** Why the campaign loop exited. *)
type stop_reason =
  | Budget_exhausted  (** [max_executions] reached *)
  | Time_exhausted  (** [max_seconds] wall-clock budget reached *)
  | Queue_exhausted  (** no seed left to select (sequential loop) *)
  | Stalled  (** parallel stall guard: too many zero-progress rounds *)
  | Preempted
      (** an [on_safe_point] hook raised {!Campaign.Preempt}: the
          campaign yielded mid-run with a snapshot captured; the report
          is a partial view, and the campaign is expected to be resumed
          later (the service scheduler's time-slice mechanism) *)

val stop_reason_to_string : stop_reason -> string
(** Kebab-case tag, as rendered in the JSON report. *)

val stop_reason_of_string : string -> (stop_reason, string) result

type domain_stat = {
  domain : int;  (** worker domain id *)
  d_execs : int;  (** sequence executions this domain performed *)
  busy_seconds : float;  (** time inside fuzzing tasks *)
  stall_seconds : float;
      (** time parked at batch barriers waiting for the coordinator merge *)
}

type parallel_stats = {
  jobs : int;
  rounds : int;  (** coordinator merge rounds *)
  round_batch : int;  (** seeds shipped per domain per round (initial) *)
  round_batch_auto : bool;  (** the auto-tune controller was driving *)
  round_batch_final : int;
      (** round batch width at campaign end — equals [round_batch]
          unless the auto-tuner moved it *)
  merge_seconds : float;
      (** coordinator time spent merging feedback — merges overlap with
          still-running sibling tasks (incremental in-order merge), so
          this is work attributed to the coordinator, not wall-clock the
          workers spent parked *)
  merge_wait_seconds : float;
      (** coordinator wall-clock blocked at pool barriers waiting for
          the next in-order result (from {!Pool.stats}) *)
  worker_idle_seconds : float;
      (** summed worker wall-clock parked while a batch was in flight *)
  steals : int;  (** work-stealing events in the pool *)
  domains : domain_stat list;
}

type t = {
  contract_name : string;
  executions : int;
  steps : int;
      (** EVM opcodes dispatched across the campaign; transactions
          replayed from the prefix-state cache are excluded *)
  mask_probes : int;
      (** Algorithm-2 probe executions (a subset of [executions]) —
          lets bench runs attribute wall time to probe waves vs
          mutation rounds *)
  predict_proposals : int;
      (** prediction proposal executions (also a subset of
          [executions]); 0 unless [--predict] *)
  covered_branches : int;  (** distinct (pc, side) identities exercised *)
  covered : (int * bool) list;  (** the exercised branch sides themselves *)
  total_branch_sides : int;  (** 2 x number of JUMPIs in the bytecode *)
  findings : Oracles.Oracle.finding list;  (** deduplicated *)
  occurrences : (Oracles.Oracle.key * int) list;
      (** triage view: every alarm occurrence grouped under its
          (class, pc, call-path hash) dedup key, sorted by key — a long
          campaign raises the same finding hundreds of times; this is
          where the duplicates go *)
  witnesses : (Oracles.Oracle.finding * string) list;
      (** finding paired with the rendering of the seed that exposed it *)
  witness_seeds : (Oracles.Oracle.finding * Seed.t) list;
      (** the raw seeds, for replay and minimisation *)
  over_time : checkpoint list;  (** coverage growth, in execution order *)
  seeds_in_queue : int;
  corpus : Seed.t list;  (** the final seed queue, for saving/resuming *)
  corpus_skipped : (int * string) list;
      (** corrupt blocks the corpus loader skipped ([(block, reason)]);
          surfaces in [to_json] as the ["skipped"] field *)
  wall_seconds : float;
  stop_reason : stop_reason;  (** why the loop exited *)
  parallel : parallel_stats option;
      (** per-domain throughput, [None] for sequential campaigns *)
}

val execs_per_sec : domain_stat -> float
(** Executions per second of busy time for one domain. *)

val coverage_pct : t -> float
(** [100 * covered / total]; 0 when the contract has no branches. *)

val has_class : t -> Oracles.Oracle.bug_class -> bool

val findings_by_class : t -> (Oracles.Oracle.bug_class * int) list

val pp_summary : Format.formatter -> t -> unit

val to_text : t -> string
(** Full plain-text report: summary, per-class counts, every finding with
    its witness sequence, and the coverage growth curve — what the CLI
    writes with [--out]. The growth curve is sampled at ~20 points with
    the final checkpoint always included. *)

val to_json : t -> Telemetry.Json.t
(** The machine-readable report: every field of [t] except the raw
    seeds ([witness_seeds], [corpus] — those serialise through
    {!Replay}), plus derived [coverage_pct] and [execs_per_sec]. This
    is what [mufuzz fuzz --json] prints and the bench harness
    ingests. *)

val to_json_string : t -> string
(** [Telemetry.Json.to_string] of {!to_json}: one compact line. *)
