(* Keccak-f[1600] permutation and the Keccak-256 sponge (rate 1088 bits,
   capacity 512, multi-rate padding 0x01 .. 0x80).

   Lanes are stored as two 32-bit halves in flat [int] arrays rather
   than as [int64 array]: OCaml boxes every int64 an array yields or
   stores, so an int64-based permutation allocates thousands of blocks
   per call and runs an order of magnitude slower than this tagged-int
   version, which allocates nothing inside the round loop. Lane [i]
   lives at indices [2*i] (low half) and [2*i + 1] (high half). *)

let round_constants =
  [| 0x0000000000000001L; 0x0000000000008082L; 0x800000000000808AL;
     0x8000000080008000L; 0x000000000000808BL; 0x0000000080000001L;
     0x8000000080008081L; 0x8000000000008009L; 0x000000000000008AL;
     0x0000000000000088L; 0x0000000080008009L; 0x000000008000000AL;
     0x000000008000808BL; 0x800000000000008BL; 0x8000000000008089L;
     0x8000000000008003L; 0x8000000000008002L; 0x8000000000000080L;
     0x000000000000800AL; 0x800000008000000AL; 0x8000000080008081L;
     0x8000000000008080L; 0x0000000080000001L; 0x8000000080008008L |]

let rc_lo =
  Array.map (fun c -> Int64.to_int (Int64.logand c 0xFFFFFFFFL)) round_constants

let rc_hi =
  Array.map
    (fun c -> Int64.to_int (Int64.logand (Int64.shift_right_logical c 32) 0xFFFFFFFFL))
    round_constants

(* rotation offsets, indexed [x + 5*y] *)
let rotation_offsets =
  [| 0; 1; 62; 28; 27;
     36; 44; 6; 55; 20;
     3; 10; 43; 25; 39;
     41; 45; 15; 21; 8;
     18; 2; 61; 56; 14 |]

let mask32 = 0xFFFFFFFF

(* Index tables, precomputed so the round loop does no integer division
   ([mod 5] everywhere would otherwise dominate the permutation). *)

(* theta: lane i is xored with column d.(i mod 5) *)
let theta_d = Array.init 25 (fun i -> 2 * (i mod 5))

(* rho/pi: lane [src = x + 5y] moves to [dst = y + 5*((2x + 3y) mod 5)] *)
let pi_dst =
  Array.init 25 (fun src ->
      let x = src mod 5 and y = src / 5 in
      y + (5 * (((2 * x) + (3 * y)) mod 5)))

(* chi: lane i combines with lanes at x+1 and x+2 in the same row *)
let chi_j =
  Array.init 25 (fun i ->
      let x = i mod 5 and y = i / 5 in
      2 * (((x + 1) mod 5) + (5 * y)))

let chi_k =
  Array.init 25 (fun i ->
      let x = i mod 5 and y = i / 5 in
      2 * (((x + 2) mod 5) + (5 * y)))

(* Halves of [rotl64 (hi, lo) n]. Shifts by 32 are well-defined on
   OCaml's 63-bit ints, so the [n < 32] branch also covers [n = 0]. *)
let rot_hi hi lo n =
  if n < 32 then ((hi lsl n) lor (lo lsr (32 - n))) land mask32
  else ((lo lsl (n - 32)) lor (hi lsr (64 - n))) land mask32

let rot_lo hi lo n =
  if n < 32 then ((lo lsl n) lor (hi lsr (32 - n))) land mask32
  else ((hi lsl (n - 32)) lor (lo lsr (64 - n))) land mask32

(* [state], [b] have 50 slots (25 lanes x 2 halves); [c], [d] have 10. *)
let keccak_f state b c d =
  for round = 0 to 23 do
    (* theta *)
    for x = 0 to 4 do
      let x2 = 2 * x in
      c.(x2) <-
        state.(x2)
        lxor state.(x2 + 10) lxor state.(x2 + 20) lxor state.(x2 + 30)
        lxor state.(x2 + 40);
      c.(x2 + 1) <-
        state.(x2 + 1)
        lxor state.(x2 + 11) lxor state.(x2 + 21) lxor state.(x2 + 31)
        lxor state.(x2 + 41)
    done;
    for x = 0 to 4 do
      let p = 2 * ((x + 4) mod 5) and q = 2 * ((x + 1) mod 5) in
      let qlo = c.(q) and qhi = c.(q + 1) in
      d.(2 * x) <- c.(p) lxor rot_lo qhi qlo 1;
      d.((2 * x) + 1) <- c.(p + 1) lxor rot_hi qhi qlo 1
    done;
    for i = 0 to 24 do
      let m = theta_d.(i) in
      state.(2 * i) <- state.(2 * i) lxor d.(m);
      state.((2 * i) + 1) <- state.((2 * i) + 1) lxor d.(m + 1)
    done;
    (* rho and pi *)
    for src = 0 to 24 do
      let dst = pi_dst.(src) in
      let n = rotation_offsets.(src) in
      let lo = state.(2 * src) and hi = state.((2 * src) + 1) in
      b.(2 * dst) <- rot_lo hi lo n;
      b.((2 * dst) + 1) <- rot_hi hi lo n
    done;
    (* chi *)
    for i = 0 to 24 do
      let j = chi_j.(i) and k = chi_k.(i) in
      state.(2 * i) <- b.(2 * i) lxor (lnot b.(j) land mask32 land b.(k));
      state.((2 * i) + 1) <-
        b.((2 * i) + 1) lxor (lnot b.(j + 1) land mask32 land b.(k + 1))
    done;
    (* iota *)
    state.(0) <- state.(0) lxor rc_lo.(round);
    state.(1) <- state.(1) lxor rc_hi.(round)
  done

let rate_bytes = 136

let hash msg =
  let state = Array.make 50 0 in
  let b = Array.make 50 0 in
  let c = Array.make 10 0 in
  let d = Array.make 10 0 in
  let len = String.length msg in
  (* Build padded input: msg ^ 0x01 .. 0x80 to a multiple of the rate. *)
  let padded_len = ((len / rate_bytes) + 1) * rate_bytes in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 padded 0 len;
  Bytes.set padded len '\001';
  Bytes.set padded (padded_len - 1)
    (Char.chr (Char.code (Bytes.get padded (padded_len - 1)) lor 0x80));
  (* Absorb. Lanes are little-endian; each 32-bit half reads as two
     unsigned 16-bit loads (plain ints, no boxing). *)
  let half off =
    Bytes.get_uint16_le padded off lor (Bytes.get_uint16_le padded (off + 2) lsl 16)
  in
  let nblocks = padded_len / rate_bytes in
  for blk = 0 to nblocks - 1 do
    for lane = 0 to (rate_bytes / 8) - 1 do
      let off = (blk * rate_bytes) + (lane * 8) in
      state.(2 * lane) <- state.(2 * lane) lxor half off;
      state.((2 * lane) + 1) <- state.((2 * lane) + 1) lxor half (off + 4)
    done;
    keccak_f state b c d
  done;
  (* Squeeze 32 bytes (fits in one block). *)
  String.init 32 (fun i ->
      let pos = i mod 8 in
      let h = state.((2 * (i / 8)) + (pos / 4)) in
      Char.chr ((h lsr (8 * (pos mod 4))) land 0xFF))

let hash_hex msg = Util.Hex.encode (hash msg)

let hash_word msg = Word.U256.of_bytes_be (hash msg)

let selector signature = String.sub (hash signature) 0 4
