(** Magic-value solving over recorded comparison sites (Harvey-style
    input prediction, ROADMAP item 3).

    Pure value-level reasoning: given the {!Evm.Trace.comparison} a
    branch condition derives from, compute replacement values for the
    fuzzer-controlled operand that flip the condition. Mapping values
    back into seed bytes is {!Inject}'s job; choosing when to fire is
    the campaign's. *)

type side = Lhs | Rhs

val side_to_string : side -> string

val smin : Word.U256.t
(** Two's-complement most-negative word, [2^255]. *)

val smax : Word.U256.t
(** Two's-complement most-positive word, [2^255 - 1]. *)

val eval : Evm.Trace.cmp_op -> Word.U256.t -> Word.U256.t -> bool
(** Concrete comparison semantics ([Ciszero] ignores its second
    argument). *)

val eval_cond : Evm.Trace.comparison -> lhs:Word.U256.t -> rhs:Word.U256.t -> bool
(** Branch-condition truth for the given operand values: {!eval} of the
    operator, negated once if an ISZERO chain inverted the comparison on
    its way to the JUMPI. *)

val input_controlled : Evm.Trace.Taint.t -> bool
(** Does this taint mark a value the fuzzer can steer — calldata bytes,
    msg.value, or the sender choice (CALLER)? *)

val controlled_sides : Evm.Trace.comparison -> side list

val candidates : Evm.Trace.comparison -> want:bool -> (side * Word.U256.t) list
(** [candidates c ~want] proposes [(side, value)] pairs such that
    setting that operand to that value (the other held at its observed
    value) makes the branch condition equal [want]: the exact value for
    EQ, boundary ±1 for LT/GT, two's-complement boundaries and extremes
    for SLT/SGT, zero/non-zero for ISZERO. Every returned pair is
    verified against {!eval_cond}, so the flip is guaranteed at the
    value level. Sides the fuzzer does not control propose nothing. *)

val side_taint : Evm.Trace.comparison -> side -> Evm.Trace.Taint.t
val side_value : Evm.Trace.comparison -> side -> Word.U256.t
