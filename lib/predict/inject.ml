(* Mapping solved values back into a transaction's byte stream.

   A seed tx stream is the ABI argument words followed by one 32-byte
   msg.value word; taint tells us which region the flipping operand was
   read from (calldata -> argument words, callvalue -> the value word).
   Byte-level provenance is not tracked, so every word window of the
   region is a candidate site — windows whose current content equals the
   operand value observed at the comparison are ranked first, since they
   almost certainly ARE the operand.

   The mask interaction invariant lives here: a solved byte is only ever
   written where [allow] admits mutation. A window where some byte that
   would need to change is mask-protected is skipped entirely — a
   partially-written magic value cannot hit its comparison, it would
   just burn budget. *)

module U = Word.U256
module T = Evm.Trace.Taint

let word = 32

(* Aligned windows of the stream region(s) the taint points at. *)
let windows ~taint ~args_len ~stream_len =
  let arg_windows =
    if not (T.has taint T.calldata) then []
    else
      let rec go at acc =
        if at + word <= Stdlib.min args_len stream_len then
          go (at + word) (at :: acc)
        else List.rev acc
      in
      go 0 []
  in
  let value_window =
    if T.has taint T.callvalue && args_len + word <= stream_len then [ args_len ]
    else []
  in
  arg_windows @ value_window

let read_window stream at = U.of_bytes_be (String.sub stream at word)

(* Write [value]'s big-endian bytes into the window at [at], touching
   only bytes that actually differ and only if [allow] admits every one
   of them. *)
let patch ~allow ~stream ~at value =
  if at + word > String.length stream then None
  else begin
    let bytes = U.to_bytes_be value in
    let ok = ref true in
    for i = 0 to word - 1 do
      if stream.[at + i] <> bytes.[i] && not (allow (at + i)) then ok := false
    done;
    if not !ok then None
    else if String.sub stream at word = bytes then None  (* no-op patch *)
    else
      Some
        (String.init (String.length stream) (fun i ->
             if i >= at && i < at + word then bytes.[i - at] else stream.[i]))
  end

(* All mask-respecting single-window patches for one solved value,
   best-evidence windows (current content = the observed operand) first. *)
let patches ~allow ~taint ~current ~args_len ~stream value =
  let ws = windows ~taint ~args_len ~stream_len:(String.length stream) in
  let matching, rest =
    List.partition (fun at -> U.equal (read_window stream at) current) ws
  in
  List.filter_map (fun at -> patch ~allow ~stream ~at value) (matching @ rest)
