(** Writing solved values into seed transaction streams through the
    mutation mask.

    Invariant: solved bytes only ever land in positions [allow] admits;
    a window needing a protected byte is skipped whole rather than
    partially patched. *)

val word : int
(** Window width: 32 bytes, one ABI word. *)

val windows :
  taint:Evm.Trace.Taint.t -> args_len:int -> stream_len:int -> int list
(** Candidate aligned window offsets for an operand with this taint:
    the argument words for calldata, the trailing value word for
    msg.value. Windows that do not fit the stream are dropped. *)

val read_window : string -> int -> Word.U256.t

val patch :
  allow:(int -> bool) -> stream:string -> at:int -> Word.U256.t -> string option
(** One-window write of the value's 32 big-endian bytes. [None] if the
    window does not fit, if any byte that would change is not admitted
    by [allow], or if the window already holds the value. *)

val patches :
  allow:(int -> bool) ->
  taint:Evm.Trace.Taint.t ->
  current:Word.U256.t ->
  args_len:int ->
  stream:string ->
  Word.U256.t ->
  string list
(** Every viable single-window patch of the stream, windows whose
    current content equals [current] (the operand value observed at the
    comparison — the strongest provenance evidence) first. *)
