(* Harvey-style magic-value solving over recorded comparison sites.

   Given the comparison a frontier branch's condition derives from —
   operator, the two concrete operands observed at run time, per-side
   taint — propose replacement values for the operand the fuzzer
   controls that make the condition come out the other way. Candidates
   are generated from the usual tables (exact hit for EQ, boundary ±1
   for orderings, two's-complement extremes for the signed forms) and
   then filtered through a concrete re-evaluation of the comparison, so
   every value returned provably flips the condition with the other
   operand held fixed. *)

module U = Word.U256
module T = Evm.Trace.Taint

type side = Lhs | Rhs

let side_to_string = function Lhs -> "lhs" | Rhs -> "rhs"

(* signed extremes *)
let smin = U.shift_left U.one 255
let smax = U.sub smin U.one

let eval (op : Evm.Trace.cmp_op) a b =
  match op with
  | Ceq -> U.equal a b
  | Clt -> U.lt a b
  | Cgt -> U.gt a b
  | Cslt -> U.slt a b
  | Csgt -> U.sgt a b
  | Ciszero -> U.is_zero a

(* Truth of the branch condition for given operand values: the recorded
   comparison result, negated once per intervening ISZERO. *)
let eval_cond (c : Evm.Trace.comparison) ~lhs ~rhs =
  let r = eval c.cmp_op lhs rhs in
  if c.negated then not r else r

(* An operand side counts as fuzzer-controlled if its value flows from
   transaction input bytes (calldata or msg.value) or from the sender
   choice (CALLER). *)
let input_controlled t =
  T.has t T.calldata || T.has t T.callvalue || T.has t T.caller

let controlled_sides (c : Evm.Trace.comparison) =
  (if input_controlled c.lhs_taint then [ Lhs ] else [])
  @
  match c.cmp_op with
  | Ciszero -> []  (* rhs is synthetic zero *)
  | _ -> if input_controlled c.rhs_taint then [ Rhs ] else []

(* Raw candidate values for [side] that may make [eval cmp_op] come out
   [want]; the caller filters through {!eval_cond}, so over-proposing
   here is harmless. *)
let raw_candidates (op : Evm.Trace.cmp_op) ~(other : U.t) ~want =
  match (op, want) with
  | (Ceq | Ciszero), true -> [ other ]
  | (Ceq | Ciszero), false ->
    [ U.add other U.one; U.sub other U.one; U.lognot other; U.one ]
  | (Clt | Cgt), true -> [ U.sub other U.one; U.add other U.one; U.zero; U.max_value ]
  | (Clt | Cgt), false -> [ other; U.zero; U.max_value ]
  | (Cslt | Csgt), true -> [ U.sub other U.one; U.add other U.one; smin; smax ]
  | (Cslt | Csgt), false -> [ other; smin; smax ]

let dedup values =
  List.fold_left
    (fun acc v -> if List.exists (U.equal v) acc then acc else v :: acc)
    [] values
  |> List.rev

(* Candidate (side, value) pairs that make the branch condition equal
   [want], for every fuzzer-controlled side. For [Ciszero] the
   comparison is unary and only the lhs can move. *)
let candidates (c : Evm.Trace.comparison) ~want =
  (* want is the desired condition value; undo the ISZERO chain to get
     the desired outcome of the comparison itself *)
  let want_op = if c.negated then not want else want in
  List.concat_map
    (fun side ->
      let other = match side with Lhs -> c.rhs | Rhs -> c.lhs in
      raw_candidates c.cmp_op ~other ~want:want_op
      |> dedup
      |> List.filter (fun v ->
             let lhs, rhs =
               match side with Lhs -> (v, c.rhs) | Rhs -> (c.lhs, v)
             in
             eval_cond c ~lhs ~rhs = want)
      |> List.map (fun v -> (side, v)))
    (controlled_sides c)

let side_taint (c : Evm.Trace.comparison) = function
  | Lhs -> c.lhs_taint
  | Rhs -> c.rhs_taint

let side_value (c : Evm.Trace.comparison) = function
  | Lhs -> c.lhs
  | Rhs -> c.rhs
