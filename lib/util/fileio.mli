(** Crash-safe file writes.

    Everything the fuzzer persists across runs — corpus blocks, repro
    artifacts, campaign checkpoints — goes through {!write_atomic} so a
    SIGKILL mid-write can never leave a torn file under the final name:
    readers see either the old content or the new, never a prefix. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] writes [content] to a fresh temp file in
    [Filename.dirname path], flushes it, and [Sys.rename]s it over
    [path] (atomic within one filesystem). On any error the temp file is
    removed and the exception re-raised; [path] is untouched. *)

val read_file : string -> string
(** [read_file path] is the whole (binary) content of [path]. *)
