(** Crash-safe file writes and process-scoped scratch directories.

    Everything the fuzzer persists across runs — corpus blocks, repro
    artifacts, campaign checkpoints, fleet ledgers — goes through
    {!write_atomic} / {!with_atomic_out} so a SIGKILL mid-write can
    never leave a torn file under the final name: readers see either
    the old content or the new, never a prefix.

    Scratch space goes through {!temp_dir} / {!with_temp_dir}: every
    directory created here is removed by one [at_exit] hook, so
    abnormal-but-orderly exits ([exit 1], uncaught exceptions reaching
    the CLI handler) cannot strand [*-tmp-*] litter; only SIGKILL
    can, and the next run is free to sweep it. *)

val with_atomic_out : string -> (out_channel -> 'a) -> 'a
(** [with_atomic_out path f] opens a fresh temp file in
    [Filename.dirname path], runs [f] on its channel, flushes, and
    [Sys.rename]s it over [path] (atomic within one filesystem). On any
    error the temp file is removed and the exception re-raised; [path]
    is untouched. This is the streaming spelling of {!write_atomic} —
    corpus shard files are written through it line by line without
    building the whole content in memory. *)

val write_atomic : string -> string -> unit
(** [write_atomic path content] — {!with_atomic_out} writing one
    string. *)

val read_file : string -> string
(** [read_file path] is the whole (binary) content of [path]. *)

val remove_tree : string -> unit
(** Recursive best-effort delete; missing paths and permission errors
    are ignored (cleanup must never mask the original failure). *)

val temp_dir : ?in_dir:string -> prefix:string -> unit -> string
(** Create a fresh private directory
    [<in_dir>/<prefix>-<pid>-<n>] (default [in_dir]: the system temp
    directory) and register it for removal at process exit. *)

val with_temp_dir : ?in_dir:string -> prefix:string -> (string -> 'a) -> 'a
(** Scoped {!temp_dir}: the directory is removed (and deregistered)
    when [f] returns or raises. *)
