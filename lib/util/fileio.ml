let write_atomic path content =
  let dir = Filename.dirname path in
  (* the temp file must live in the same directory as the target:
     [Sys.rename] is only atomic within a filesystem, and a crash
     mid-write must never leave a torn file under the final name *)
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc content;
        flush oc);
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))
