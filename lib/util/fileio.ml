let with_atomic_out path f =
  let dir = Filename.dirname path in
  (* the temp file must live in the same directory as the target:
     [Sys.rename] is only atomic within a filesystem, and a crash
     mid-write must never leave a torn file under the final name *)
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    let result =
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          let r = f oc in
          flush oc;
          r)
    in
    Sys.rename tmp path;
    result
  with
  | result -> result
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_atomic path content =
  with_atomic_out path (fun oc -> output_string oc content)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ---------------- temp directories ---------------- *)

let rec remove_tree path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun f -> remove_tree (Filename.concat path f)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  | exception Unix.Unix_error _ -> ()

(* Every temp dir this process ever creates is registered here and
   removed by one at_exit hook, so scratch space cannot outlive the
   process on paths that return normally or via [exit] — only SIGKILL
   can strand a dir, and a later run with the same prefix is free to
   clean it up. *)
let live_dirs : string list ref = ref []

let live_mutex = Mutex.create ()

let cleanup_registered = ref false

let register dir =
  Mutex.lock live_mutex;
  if not !cleanup_registered then begin
    cleanup_registered := true;
    at_exit (fun () -> List.iter remove_tree !live_dirs)
  end;
  live_dirs := dir :: !live_dirs;
  Mutex.unlock live_mutex

let unregister dir =
  Mutex.lock live_mutex;
  live_dirs := List.filter (fun d -> d <> dir) !live_dirs;
  Mutex.unlock live_mutex

let temp_dir ?(in_dir = Filename.get_temp_dir_name ()) ~prefix () =
  let counter = ref 0 in
  let rec attempt () =
    incr counter;
    let dir =
      Filename.concat in_dir
        (Printf.sprintf "%s-%d-%d" prefix (Unix.getpid ()) !counter)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) when !counter < 10_000 ->
      attempt ()
  in
  let dir = attempt () in
  register dir;
  dir

let with_temp_dir ?in_dir ~prefix f =
  let dir = temp_dir ?in_dir ~prefix () in
  Fun.protect
    ~finally:(fun () ->
      remove_tree dir;
      unregister dir)
    (fun () -> f dir)
