(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every source of randomness in the fuzzer flows through a value of type
    {!t}, seeded explicitly, so that campaigns are reproducible and
    experiments can be re-run bit-for-bit. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds yield
    independent streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val save : t -> int64
(** [save t] exports the full generator state. [restore (save t)] is a
    generator that produces exactly the stream [t] would from this point
    on — the pair is what campaign checkpoints persist. *)

val restore : int64 -> t
(** [restore state] rebuilds a generator from a {!save}d state. Unlike
    {!create}, which treats its argument as a fresh seed, [restore]
    resumes mid-stream. (For SplitMix64 the two coincide, but callers
    must not rely on that.) *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child
    generator, for handing to subcomponents without sharing state. *)

val derive : int64 -> int -> t
(** [derive seed index] is the [index]-th child stream of [seed], as a
    pure function of both — unlike {!split} it involves no mutable base
    generator, so the stream handed to worker domain [index] does not
    depend on how many other streams were derived before it or in what
    order. Distinct indices yield independent streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val byte : t -> char

val bytes : t -> int -> bytes
(** [bytes t n] is [n] uniformly random bytes. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
