type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let save t = t.state

let restore state = { state }

(* SplitMix64 step (Steele et al., "Fast splittable pseudorandom number
   generators"): advance by the golden-ratio gamma, then mix. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

(* Stateless stream derivation: the [index]-th child of [seed] is the
   mix of a state offset by [index + 1] gammas, so worker streams are a
   pure function of (seed, index) — no shared base generator to advance,
   hence no dependence on the order in which domains are seeded. *)
let derive seed index =
  let base =
    Int64.add seed (Int64.mul (Int64.of_int (index + 1)) golden_gamma)
  in
  create (next_int64 (create base))

let int t bound =
  assert (bound > 0);
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 t) mask) in
  v mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let byte t = Char.chr (int t 256)

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (byte t)
  done;
  b

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let choose_list t l =
  assert (l <> []);
  List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a
